#include "obs/lifecycle.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metric_names.hpp"

namespace obs {

std::string ProvenanceTimeline::render() const {
  std::ostringstream os;
  os << "update " << ts_logical << ':' << ts_node;
  if (originate_at >= 0.0) {
    os << " originated at t=" << originate_at << " on node " << ts_node
       << ", flood fan-out " << fanout << '\n';
  } else {
    os << " (originate not observed)\n";
  }
  for (std::size_t n = 0; n < per_node.size(); ++n) {
    const Cell& c = per_node[n];
    os << "  node " << n << ':';
    if (c.deliver < 0.0 && c.merge < 0.0) {
      os << " never delivered\n";
      continue;
    }
    const auto rel = [this](double t) {
      return originate_at >= 0.0 ? t - originate_at : t;
    };
    const char* unit = originate_at >= 0.0 ? "+" : "t=";
    if (c.deliver >= 0.0) os << " deliver " << unit << rel(c.deliver);
    if (c.merge >= 0.0) {
      os << " merge " << unit << rel(c.merge);
      if (c.displaced > 0) os << " (displaced " << c.displaced << ")";
    } else {
      os << " merge MISSING";
    }
    os << '\n';
  }
  return os.str();
}

std::size_t LifecycleTracker::index_of(const TsKey& key) {
  const auto [it, inserted] = index_.emplace(key, index_.size());
  if (inserted) {
    originate_at_.push_back(-1.0);
    merge_count_.push_back(0);
    deliver_count_.push_back(0);
    fanout_.push_back(0);
    remote_seen_.push_back(0);
    cells_.resize(cells_.size() + cluster_size_);
  }
  return it->second;
}

void LifecycleTracker::on_event(const Event& e) {
  switch (e.type) {
    case EventType::kBroadcastOriginate: {
      const std::size_t idx = index_of({e.ts_logical, e.ts_node});
      if (originate_at_[idx] < 0.0) {
        originate_at_[idx] = e.time;
        originate_time_.emplace(TsKey{e.ts_logical, e.ts_node}, e.time);
      }
      // The delivery path sees only (origin, origin_seq); register the
      // join key here, where both namings of the update are in hand.
      seq_index_.emplace(std::make_pair(static_cast<std::uint64_t>(e.node),
                                        e.a),
                         idx);
      break;
    }
    case EventType::kBroadcastSend: {
      // Flood fan-out at the origin: a = origin_seq, b = peers reached.
      const auto it = seq_index_.find(
          std::make_pair(static_cast<std::uint64_t>(e.node), e.a));
      if (it != seq_index_.end()) {
        fanout_[it->second] += e.b;
        fanout_degree_.add(static_cast<double>(e.b));
      }
      break;
    }
    case EventType::kBroadcastDeliver:
      note_deliver(e);
      break;
    case EventType::kMergeTailAppend:
    case EventType::kMergeMidInsert:
      note_merge(e);
      break;
    default:
      break;
  }
}

void LifecycleTracker::note_deliver(const Event& e) {
  if (e.node >= cluster_size_) return;
  // node = deliverer, a = origin, b = origin_seq.
  const auto it = seq_index_.find(std::make_pair(e.a, e.b));
  if (it == seq_index_.end()) return;
  const std::size_t idx = it->second;
  auto& bits = delivered_[e.node];
  const std::size_t word = idx / 64, bit = idx % 64;
  if (word >= bits.size()) bits.resize(word + 1, 0);
  if (bits[word] & (1ull << bit)) return;  // amnesia re-delivery: known
  bits[word] |= 1ull << bit;

  cells_[idx * cluster_size_ + e.node].deliver = e.time;
  const double origin_t = originate_at_[idx];
  if (origin_t >= 0.0) {
    const double lat = e.time - origin_t;
    deliver_latency_.add(lat);
    if (e.node != e.a && !remote_seen_[idx]) {
      remote_seen_[idx] = 1;
      first_deliver_.add(lat);
    }
    if (++deliver_count_[idx] == cluster_size_) last_deliver_.add(lat);
  } else {
    ++deliver_count_[idx];
  }
}

void LifecycleTracker::note_merge(const Event& e) {
  if (e.node >= cluster_size_) return;
  const std::size_t idx = index_of({e.ts_logical, e.ts_node});
  auto& bits = merged_[e.node];
  const std::size_t word = idx / 64, bit = idx % 64;
  if (word >= bits.size()) bits.resize(word + 1, 0);
  if (bits[word] & (1ull << bit)) return;  // re-merge after amnesia: known
  bits[word] |= 1ull << bit;

  ProvenanceTimeline::Cell& cell = cells_[idx * cluster_size_ + e.node];
  cell.merge = e.time;
  if (e.type == EventType::kMergeMidInsert) {
    cell.displaced = e.a;
    total_churn_ += e.a;
    churn_.add(static_cast<double>(e.a));
    if (originate_at_[idx] >= 0.0) {
      mid_insert_latency_.add(e.time - originate_at_[idx]);
    }
  } else {
    churn_.add(0.0);
  }
  if (++merge_count_[idx] == cluster_size_) {
    ++fully_replicated_;
    if (originate_at_[idx] >= 0.0) {
      latency_.add(e.time - originate_at_[idx]);
    }
  }
}

bool LifecycleTracker::timeline(std::uint64_t ts_logical, sim::NodeId ts_node,
                                ProvenanceTimeline& out) const {
  const auto it = index_.find({ts_logical, ts_node});
  if (it == index_.end()) return false;
  const std::size_t idx = it->second;
  out.ts_logical = ts_logical;
  out.ts_node = ts_node;
  out.originate_at = originate_at_[idx];
  out.fanout = fanout_[idx];
  out.per_node.assign(cells_.begin() + static_cast<std::ptrdiff_t>(
                                           idx * cluster_size_),
                      cells_.begin() + static_cast<std::ptrdiff_t>(
                                           (idx + 1) * cluster_size_));
  return true;
}

std::uint64_t LifecycleTracker::divergence() const {
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < cluster_size_; ++i) {
    for (std::size_t j = 0; j < cluster_size_; ++j) {
      if (i == j) continue;
      const auto& a = merged_[i];
      const auto& b = merged_[j];
      std::uint64_t missing = 0;
      for (std::size_t w = 0; w < a.size(); ++w) {
        const std::uint64_t bw = w < b.size() ? b[w] : 0;
        missing += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & ~bw));
      }
      worst = std::max(worst, missing);
    }
  }
  return worst;
}

void LifecycleTracker::export_to(MetricsRegistry& reg) const {
  namespace mn = metric_names;
  reg.set_counter(mn::kLifecycleUpdatesOriginated, originated());
  reg.set_counter(mn::kLifecycleUpdatesFullyReplicated, fully_replicated_);
  reg.set_counter(mn::kLifecycleUndoChurnTotal, total_churn_);
  reg.set_gauge(mn::kLifecycleDivergenceMaxMissing,
                static_cast<double>(divergence()));
  reg.histogram(mn::kLifecycleReplicationLatency, Histogram::latency()) =
      latency_;
  reg.histogram(mn::kLifecycleUndoChurn, Histogram::counts()) = churn_;
  reg.histogram(mn::kCausalDeliverLatency, Histogram::latency()) =
      deliver_latency_;
  reg.histogram(mn::kCausalFirstDeliverLatency, Histogram::latency()) =
      first_deliver_;
  reg.histogram(mn::kCausalLastDeliverLatency, Histogram::latency()) =
      last_deliver_;
  reg.histogram(mn::kCausalMidInsertLatency, Histogram::latency()) =
      mid_insert_latency_;
  reg.histogram(mn::kCausalFanoutDegree, Histogram::counts()) = fanout_degree_;
}

}  // namespace obs
