#include "obs/lifecycle.hpp"

#include <algorithm>

namespace obs {

std::size_t LifecycleTracker::index_of(const TsKey& key) {
  const auto [it, inserted] = index_.emplace(key, index_.size());
  if (inserted) {
    originate_at_.push_back(-1.0);
    merge_count_.push_back(0);
  }
  return it->second;
}

void LifecycleTracker::on_event(const Event& e) {
  switch (e.type) {
    case EventType::kBroadcastOriginate: {
      const std::size_t idx = index_of({e.ts_logical, e.ts_node});
      if (originate_at_[idx] < 0.0) {
        originate_at_[idx] = e.time;
        originate_time_.emplace(TsKey{e.ts_logical, e.ts_node}, e.time);
      }
      break;
    }
    case EventType::kMergeTailAppend:
    case EventType::kMergeMidInsert:
      note_merge(e);
      break;
    default:
      break;
  }
}

void LifecycleTracker::note_merge(const Event& e) {
  if (e.node >= cluster_size_) return;
  const std::size_t idx = index_of({e.ts_logical, e.ts_node});
  auto& bits = merged_[e.node];
  const std::size_t word = idx / 64, bit = idx % 64;
  if (word >= bits.size()) bits.resize(word + 1, 0);
  if (bits[word] & (1ull << bit)) return;  // re-merge after amnesia: known
  bits[word] |= 1ull << bit;

  if (e.type == EventType::kMergeMidInsert) {
    total_churn_ += e.a;
    churn_.add(static_cast<double>(e.a));
  } else {
    churn_.add(0.0);
  }
  if (++merge_count_[idx] == cluster_size_) {
    ++fully_replicated_;
    if (originate_at_[idx] >= 0.0) {
      latency_.add(e.time - originate_at_[idx]);
    }
  }
}

std::uint64_t LifecycleTracker::divergence() const {
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < cluster_size_; ++i) {
    for (std::size_t j = 0; j < cluster_size_; ++j) {
      if (i == j) continue;
      const auto& a = merged_[i];
      const auto& b = merged_[j];
      std::uint64_t missing = 0;
      for (std::size_t w = 0; w < a.size(); ++w) {
        const std::uint64_t bw = w < b.size() ? b[w] : 0;
        missing += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & ~bw));
      }
      worst = std::max(worst, missing);
    }
  }
  return worst;
}

void LifecycleTracker::export_to(MetricsRegistry& reg) const {
  reg.set_counter("lifecycle.updates_originated", originated());
  reg.set_counter("lifecycle.updates_fully_replicated", fully_replicated_);
  reg.set_counter("lifecycle.undo_churn_total", total_churn_);
  reg.set_gauge("lifecycle.divergence_max_missing",
                static_cast<double>(divergence()));
  reg.histogram("lifecycle.replication_latency", Histogram::latency()) =
      latency_;
  reg.histogram("lifecycle.undo_churn", Histogram::counts()) = churn_;
}

}  // namespace obs
