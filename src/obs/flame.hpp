// Epoch-aware flame profiling of causal replication chains.
//
// The causal graph (causal.hpp) knows every event attributable to an
// update; the epoch index (epoch.hpp) knows which failure regime each event
// fell in. This layer folds the two into latency attribution: for every
// update, its chain is decomposed into pipeline stages, and the stage
// durations are accumulated into one flame tree per epoch — so "where does
// stabilization time go while cut 0 is open?" is answerable directly
// instead of by staring at event dumps.
//
// Stage decomposition of one update's chain (times from the trace):
//
//   originate(t0) --flood_wait--> send(ts) --deliver--> per-replica
//       deliver(td) --merge_wait--> first merge(tm)
//
//   * flood_wait       ts - t0. Zero in the common case (the flood fans
//                      out in the originate step); nonzero when the origin
//                      crashed mid-broadcast and anti-entropy finished the
//                      job after restart.
//   * deliver;<rank>   td - ts per remote replica, bucketed by delivery
//                      rank: `first` (the fastest replica), `last` (the
//                      one that completes the flood — under a partition
//                      this is dominated by heal-time anti-entropy), `mid`
//                      (everything between).
//   * merge;<kind>     tm - td per remote replica, split tail_append vs
//                      mid_insert — mid_insert weight is the reordering
//                      cost the paper's log-transform machinery pays.
//
// The critical path of an update is the root-to-stable path to the replica
// whose first merge completes LAST — its length (tm* - t0) is the update's
// stabilization latency, and its dominant stage names what to fix. Per
// epoch, the profile carries critical-path statistics and dominant-stage
// counts next to the flame tree; Cluster::metrics() exports them as the
// epoch.* counter family.
//
// All weights are integer microseconds (llround of simulated seconds *
// 1e6): exporters emit integers only (plus shortest-round-trip epoch
// boundary times), so same-seed runs produce byte-identical folded text,
// JSON, and Perfetto slice output.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/event.hpp"

namespace obs {

/// One frame of a flame tree. Children are keyed by frame name in a
/// std::map, so every traversal is deterministic.
struct FlameNode {
  std::int64_t self_us = 0;   ///< Weight attributed exactly at this frame.
  std::int64_t total_us = 0;  ///< self_us + all descendants.
  std::uint64_t samples = 0;  ///< Stage instances that contributed here.
  std::map<std::string, FlameNode> children;
};

/// Per-update stage timing — the raw rows the flame trees fold. Exposed for
/// tests and the CLI's per-update view.
struct UpdateTiming {
  CausalGraph::UpdateKey key{0, 0};
  std::size_t epoch = 0;      ///< Epoch of the originate event.
  double originate = 0.0;     ///< t0.
  double send = 0.0;          ///< ts (== t0 when the flood was immediate).
  std::uint32_t replicas = 0; ///< Remote replicas whose first merge was seen.
  bool complete = false;      ///< At least one remote replica merged.
  double critical_end = 0.0;  ///< tm* — last replica's first merge time.
  sim::NodeId critical_node = 0;
  /// Critical-path segments, microseconds.
  std::int64_t crit_flood_us = 0;
  std::int64_t crit_deliver_us = 0;
  std::int64_t crit_merge_us = 0;
  std::string dominant;  ///< "flood_wait" | "deliver" | "merge".

  std::int64_t critical_us() const {
    return crit_flood_us + crit_deliver_us + crit_merge_us;
  }
};

/// One epoch's attribution: the flame tree plus the summary statistics the
/// metrics export and the CLI's top-k table read.
struct EpochProfile {
  std::size_t epoch = 0;  ///< Index into the EpochIndex.
  std::string label;      ///< Epoch::label() — regime tag.
  double start = 0.0;
  double end = 0.0;
  FlameNode root;  ///< Children: flood_wait, deliver;*, merge;*.
  std::uint64_t updates = 0;     ///< Updates originated in this epoch.
  std::uint64_t incomplete = 0;  ///< ... with no remote merge in the stream.
  std::int64_t critical_total_us = 0;
  std::int64_t critical_max_us = 0;
  /// How many updates' critical path was dominated by each stage.
  std::map<std::string, std::uint64_t> dominant_counts;
};

/// A stage's share of one epoch, as the CLI ranks them.
struct StageShare {
  std::string stage;  ///< Leaf path, e.g. "deliver;last".
  std::int64_t us = 0;
  std::uint64_t samples = 0;
};

class FlameProfile {
 public:
  /// Fold every update chain in `graph` into per-epoch flame trees.
  /// `events` must be the stream both `graph` and `epochs` were built from.
  static FlameProfile build(const std::vector<Event>& events,
                            const CausalGraph& graph,
                            const EpochIndex& epochs);

  const std::vector<EpochProfile>& epochs() const { return epochs_; }
  const std::vector<UpdateTiming>& timings() const { return timings_; }

  /// Leaf stages of epoch `i` by descending weight (ties: stage name) —
  /// the "dominating stages" table flame_report prints.
  std::vector<StageShare> top_stages(std::size_t i, std::size_t k = 8) const;

  /// flamegraph.pl-compatible folded stacks: one line per leaf frame,
  /// "epoch<i>:<label>;<stage>[;<sub>] <weight_us>", epochs in order, frames
  /// in map order. Deterministic byte-for-byte for a given stream.
  std::string folded() const;

  /// Complete JSON document (integers + shortest-round-trip epoch times):
  /// per-epoch tree, stats, and dominant-stage counts. Byte-exact across
  /// same-seed runs.
  std::string to_json() const;

  /// Chrome/Perfetto trace_event slices: one track per pipeline stage, one
  /// "X" slice per update critical-path segment, plus an epoch banner track
  /// — stabilization latency laid out on the simulated timeline.
  std::string perfetto_json() const;

 private:
  std::vector<EpochProfile> epochs_;
  std::vector<UpdateTiming> timings_;
};

}  // namespace obs
