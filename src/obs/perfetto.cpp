#include "obs/perfetto.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace obs {

namespace {

/// trace_event "tid" for the synthetic control track.
constexpr long long kControlTid = 1000000;

void emit_event(std::ostream& os, const Event& e) {
  // Crash/restart become a duration slice ("down") on the node's track so
  // downtime is visible as a solid block; everything else is an instant.
  const char* ph = "i";
  std::string_view name = event_type_name(e.type);
  if (e.type == EventType::kCrash) {
    ph = "B";
    name = "down";
  } else if (e.type == EventType::kRestart) {
    ph = "E";
    name = "down";
  }
  const long long tid =
      e.node == kControlNode ? kControlTid : static_cast<long long>(e.node);
  os << "{\"name\":\"" << name << "\",\"ph\":\"" << ph << "\"";
  if (ph[0] == 'i') os << ",\"s\":\"t\"";
  os << ",\"ts\":" << std::fixed << std::setprecision(3) << e.time * 1e6
     << std::defaultfloat << ",\"pid\":0,\"tid\":" << tid;
  os << ",\"args\":{";
  // Slices are renamed to "down"; keep the underlying event reachable.
  if (name != event_type_name(e.type)) {
    os << "\"event\":\"" << event_type_name(e.type) << "\",";
  }
  os << "\"ts\":\"" << e.ts_logical << ':' << e.ts_node << "\",\"a\":" << e.a
     << ",\"b\":" << e.b << "}}";
}

}  // namespace

void write_perfetto(const std::vector<Event>& events, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    emit_event(os, e);
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string perfetto_json(const Tracer& tracer) {
  std::ostringstream os;
  write_perfetto(tracer.ring(), os);
  return os.str();
}

PerfettoSink::PerfettoSink(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[";
}

PerfettoSink::~PerfettoSink() { finish(); }

void PerfettoSink::on_event(const Event& e) {
  if (finished_) return;
  if (!first_) os_ << ",\n";
  first_ = false;
  emit_event(os_, e);
}

void PerfettoSink::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace obs
