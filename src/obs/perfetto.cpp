#include "obs/perfetto.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace obs {

namespace {

/// trace_event "tid" for the synthetic control track.
constexpr long long kControlTid = 1000000;

/// True for the message fates that carry a live flow id: the send opens the
/// arrow, the delivery (or the delivery-time crash drop — the message
/// travelled and died at a down destination) closes it. b == 0 means no
/// message entered the network, so there is nothing to draw.
bool has_flow(const Event& e) {
  return e.b != 0 && (e.type == EventType::kNetSend ||
                      e.type == EventType::kNetDeliver ||
                      e.type == EventType::kNetDropCrashed);
}

void emit_event(std::ostream& os, const Event& e) {
  // Crash/restart become a duration slice ("down") on the node's track so
  // downtime is visible as a solid block; message-fate events with a flow
  // id become minimal "X" slices (flow arrows can only bind to slices, not
  // instants); everything else is an instant.
  const char* ph = "i";
  std::string_view name = event_type_name(e.type);
  const bool flow = has_flow(e);
  if (e.type == EventType::kCrash) {
    ph = "B";
    name = "down";
  } else if (e.type == EventType::kRestart) {
    ph = "E";
    name = "down";
  } else if (flow) {
    ph = "X";
  }
  const long long tid =
      e.node == kControlNode ? kControlTid : static_cast<long long>(e.node);
  os << "{\"name\":\"" << name << "\",\"ph\":\"" << ph << "\"";
  if (ph[0] == 'i') os << ",\"s\":\"t\"";
  if (ph[0] == 'X') os << ",\"dur\":1";
  os << ",\"ts\":" << std::fixed << std::setprecision(3) << e.time * 1e6
     << std::defaultfloat << ",\"pid\":0,\"tid\":" << tid;
  os << ",\"args\":{";
  // Slices are renamed to "down"; keep the underlying event reachable.
  if (name != event_type_name(e.type)) {
    os << "\"event\":\"" << event_type_name(e.type) << "\",";
  }
  os << "\"ts\":\"" << e.ts_logical << ':' << e.ts_node << "\",\"a\":" << e.a
     << ",\"b\":" << e.b << "}}";
  if (!flow) return;
  // The companion flow event, bound to the slice just written by matching
  // (ts, pid, tid): "s" opens the arrow at the send, "f" (binding to the
  // enclosing slice, bp=e) lands it on the delivery. The network's unique
  // message id is the flow id, so arrows pair up exactly like the causal
  // graph's message edges.
  const char* fph = e.type == EventType::kNetSend ? "s" : "f";
  os << ",\n{\"name\":\"msg\",\"ph\":\"" << fph << "\"";
  if (fph[0] == 'f') os << ",\"bp\":\"e\"";
  os << ",\"id\":" << e.b << ",\"ts\":" << std::fixed << std::setprecision(3)
     << e.time * 1e6 << std::defaultfloat << ",\"pid\":0,\"tid\":" << tid
     << "}";
}

}  // namespace

void write_perfetto(const std::vector<Event>& events, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    emit_event(os, e);
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string perfetto_json(const TraceSource& tracer) {
  std::ostringstream os;
  write_perfetto(tracer.ring(), os);
  return os.str();
}

PerfettoSink::PerfettoSink(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[";
}

PerfettoSink::~PerfettoSink() { finish(); }

void PerfettoSink::on_event(const Event& e) {
  if (finished_) return;
  if (!first_) os_ << ",\n";
  first_ = false;
  emit_event(os_, e);
}

void PerfettoSink::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace obs
