#include "obs/flame.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <sstream>

namespace obs {

namespace {

std::int64_t to_us(double seconds) {
  return std::llround(seconds * 1e6);
}

/// Shortest decimal that round-trips the double — keeps the JSON exporter
/// byte-exact (same convention as serialize() in tracer.cpp).
void put_time(std::ostream& os, double t) {
  std::array<char, 32> buf;
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), t);
  os << std::string_view(buf.data(), static_cast<std::size_t>(end - buf.data()));
}

/// Attribute one stage instance at root -> frame [-> sub].
void add_leaf(FlameNode& root, const std::string& frame,
              const std::string& sub, std::int64_t us) {
  FlameNode* n = &root.children[frame];
  if (!sub.empty()) n = &n->children[sub];
  n->self_us += us;
  ++n->samples;
}

void finalize_totals(FlameNode& n) {
  n.total_us = n.self_us;
  for (auto& [name, child] : n.children) {
    finalize_totals(child);
    n.total_us += child.total_us;
  }
}

void collect_leaves(const FlameNode& n, const std::string& path,
                    std::vector<StageShare>& out) {
  if (n.children.empty()) {
    out.push_back({path, n.self_us, n.samples});
    return;
  }
  for (const auto& [name, child] : n.children) {
    collect_leaves(child, path.empty() ? name : path + ';' + name, out);
  }
}

void emit_tree_json(std::ostream& os, const FlameNode& n) {
  os << "{\"self_us\":" << n.self_us << ",\"total_us\":" << n.total_us
     << ",\"samples\":" << n.samples << ",\"children\":{";
  bool first = true;
  for (const auto& [name, child] : n.children) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    emit_tree_json(os, child);
  }
  os << "}}";
}

}  // namespace

FlameProfile FlameProfile::build(const std::vector<Event>& events,
                                 const CausalGraph& graph,
                                 const EpochIndex& epochs) {
  FlameProfile p;
  p.epochs_.reserve(epochs.size());
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const Epoch& e = epochs.epoch(i);
    EpochProfile ep;
    ep.epoch = i;
    ep.label = e.label();
    ep.start = e.start;
    ep.end = e.end;
    p.epochs_.push_back(std::move(ep));
  }

  for (const CausalGraph::UpdateKey& key : graph.update_keys()) {
    const std::vector<std::size_t> chain =
        graph.update_chain(key.first, key.second);

    // Walk the chain once (record order): originate, the origin's flood
    // send, then per remote replica its first deliver and first merge.
    std::size_t originate_idx = static_cast<std::size_t>(-1);
    sim::NodeId origin = 0;
    double t0 = 0.0, t_send = -1.0;
    struct Replica {
      sim::NodeId node = 0;
      double deliver = 0.0;
      double merge = -1.0;
      bool mid_insert = false;
    };
    std::vector<Replica> replicas;  // in deliver record order
    for (const std::size_t i : chain) {
      const Event& e = events[i];
      switch (e.type) {
        case EventType::kBroadcastOriginate:
          originate_idx = i;
          origin = e.node;
          t0 = e.time;
          break;
        case EventType::kBroadcastSend:
          if (t_send < 0.0) t_send = e.time;
          break;
        case EventType::kBroadcastDeliver: {
          if (originate_idx == static_cast<std::size_t>(-1) ||
              e.node == origin) {
            break;
          }
          bool seen = false;
          for (const Replica& r : replicas) seen = seen || r.node == e.node;
          if (!seen) replicas.push_back({e.node, e.time, -1.0, false});
          break;
        }
        case EventType::kMergeTailAppend:
        case EventType::kMergeMidInsert:
          for (Replica& r : replicas) {
            if (r.node == e.node && r.merge < 0.0) {
              r.merge = e.time;
              r.mid_insert = e.type == EventType::kMergeMidInsert;
              break;
            }
          }
          break;
        default:
          break;
      }
    }
    if (originate_idx == static_cast<std::size_t>(-1)) {
      // Truncated stream: the originate fell off the ring, so neither the
      // epoch nor t0 is known. Skip rather than misattribute.
      continue;
    }
    if (t_send < 0.0) t_send = t0;

    UpdateTiming ut;
    ut.key = key;
    ut.epoch = epochs.epoch_of_event(originate_idx);
    ut.originate = t0;
    ut.send = t_send;
    EpochProfile& ep = p.epochs_[ut.epoch];
    ++ep.updates;

    add_leaf(ep.root, "flood_wait", "", to_us(t_send - t0));
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      const char* rank = r == 0                  ? "first"
                         : r == replicas.size() - 1 ? "last"
                                                    : "mid";
      add_leaf(ep.root, "deliver", rank, to_us(replicas[r].deliver - t_send));
      if (replicas[r].merge >= 0.0) {
        ++ut.replicas;
        add_leaf(ep.root, "merge",
                 replicas[r].mid_insert ? "mid_insert" : "tail_append",
                 to_us(replicas[r].merge - replicas[r].deliver));
      }
    }

    // Critical path: the replica whose first merge completes last. Strict
    // comparison keeps ties on the earliest-delivered replica — chain order
    // is record order, so this is deterministic.
    const Replica* crit = nullptr;
    for (const Replica& r : replicas) {
      if (r.merge < 0.0) continue;
      if (crit == nullptr || r.merge > crit->merge) crit = &r;
    }
    ut.complete = crit != nullptr;
    if (crit == nullptr) {
      ++ep.incomplete;
    } else {
      ut.critical_end = crit->merge;
      ut.critical_node = crit->node;
      ut.crit_flood_us = to_us(t_send - t0);
      ut.crit_deliver_us = to_us(crit->deliver - t_send);
      ut.crit_merge_us = to_us(crit->merge - crit->deliver);
      ut.dominant = "flood_wait";
      std::int64_t best = ut.crit_flood_us;
      if (ut.crit_deliver_us > best) {
        best = ut.crit_deliver_us;
        ut.dominant = "deliver";
      }
      if (ut.crit_merge_us > best) {
        best = ut.crit_merge_us;
        ut.dominant = "merge";
      }
      ep.critical_total_us += ut.critical_us();
      ep.critical_max_us = std::max(ep.critical_max_us, ut.critical_us());
      ++ep.dominant_counts[ut.dominant];
    }
    p.timings_.push_back(std::move(ut));
  }

  for (EpochProfile& ep : p.epochs_) finalize_totals(ep.root);
  return p;
}

std::vector<StageShare> FlameProfile::top_stages(std::size_t i,
                                                 std::size_t k) const {
  std::vector<StageShare> leaves;
  if (i >= epochs_.size()) return leaves;
  collect_leaves(epochs_[i].root, "", leaves);
  std::sort(leaves.begin(), leaves.end(),
            [](const StageShare& a, const StageShare& b) {
              if (a.us != b.us) return a.us > b.us;
              return a.stage < b.stage;
            });
  if (leaves.size() > k) leaves.resize(k);
  return leaves;
}

std::string FlameProfile::folded() const {
  std::ostringstream os;
  for (const EpochProfile& ep : epochs_) {
    std::vector<StageShare> leaves;
    collect_leaves(ep.root, "", leaves);
    for (const StageShare& s : leaves) {
      os << "epoch" << ep.epoch << ':' << ep.label << ';' << s.stage << ' '
         << s.us << '\n';
    }
  }
  return os.str();
}

std::string FlameProfile::to_json() const {
  std::ostringstream os;
  os << "{\"epochs\":[";
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    const EpochProfile& ep = epochs_[i];
    if (i != 0) os << ',';
    os << "{\"epoch\":" << ep.epoch << ",\"label\":\"" << ep.label
       << "\",\"start\":";
    put_time(os, ep.start);
    os << ",\"end\":";
    put_time(os, ep.end);
    os << ",\"updates\":" << ep.updates << ",\"incomplete\":" << ep.incomplete
       << ",\"critical_total_us\":" << ep.critical_total_us
       << ",\"critical_max_us\":" << ep.critical_max_us << ",\"dominant\":{";
    bool first = true;
    for (const auto& [stage, n] : ep.dominant_counts) {
      if (!first) os << ',';
      first = false;
      os << '"' << stage << "\":" << n;
    }
    os << "},\"tree\":";
    emit_tree_json(os, ep.root);
    os << '}';
  }
  os << "]}\n";
  return os.str();
}

std::string FlameProfile::perfetto_json() const {
  // Track layout: tid 0 = epoch banners, tid 1..3 = the pipeline stages of
  // each update's critical path laid on the simulated timeline. Every ts /
  // dur is integer microseconds, so the document is byte-exact.
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const EpochProfile& ep : epochs_) {
    sep();
    const std::int64_t start = to_us(ep.start);
    const std::int64_t dur = std::max<std::int64_t>(to_us(ep.end) - start, 1);
    os << "{\"name\":\"" << ep.label << "\",\"ph\":\"X\",\"ts\":" << start
       << ",\"dur\":" << dur << ",\"pid\":0,\"tid\":0,\"args\":{\"epoch\":"
       << ep.epoch << ",\"updates\":" << ep.updates << "}}";
  }
  struct Seg {
    const char* name;
    long long tid;
  };
  for (const UpdateTiming& ut : timings_) {
    if (!ut.complete) continue;
    const std::array<Seg, 3> segs = {{{"flood_wait", 1}, {"deliver", 2},
                                      {"merge", 3}}};
    const std::array<std::int64_t, 3> durs = {ut.crit_flood_us,
                                              ut.crit_deliver_us,
                                              ut.crit_merge_us};
    std::int64_t at = to_us(ut.originate);
    for (std::size_t s = 0; s < segs.size(); ++s) {
      if (durs[s] <= 0) continue;  // zero-length slices only add clutter
      sep();
      os << "{\"name\":\"" << segs[s].name << "\",\"ph\":\"X\",\"ts\":" << at
         << ",\"dur\":" << durs[s] << ",\"pid\":0,\"tid\":" << segs[s].tid
         << ",\"args\":{\"ts\":\"" << ut.key.first << ':' << ut.key.second
         << "\",\"epoch\":" << ut.epoch << ",\"dominant\":\"" << ut.dominant
         << "\"}}";
      at += durs[s];
    }
  }
  for (const Seg& t : {Seg{"epochs", 0}, Seg{"critical.flood_wait", 1},
                       Seg{"critical.deliver", 2}, Seg{"critical.merge", 3}}) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t.tid
       << ",\"args\":{\"name\":\"" << t.name << "\"}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

}  // namespace obs
