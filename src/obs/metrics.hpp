// Unified metrics: counters + gauges + histograms, one JSON snapshot.
//
// Before this layer every bench hand-rolled its own printf JSON over a
// different subset of EngineStats/BroadcastStats/NetworkStats. The registry
// is the single folding point: stats structs export themselves into it
// (EngineStats::export_to, BroadcastStats::export_to), the lifecycle
// tracker adds trace-derived histograms, and `to_json()` emits one
// machine-readable document. `from_json()` parses exactly that grammar
// back, so snapshots can be diffed/round-tripped by tools and tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace obs {

/// Fixed-bound histogram. Bounds are upper edges of the first N buckets;
/// one implicit overflow bucket catches everything above the last bound.
/// Tracks count/sum/min/max exactly, distribution to bucket resolution.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  /// Default bounds for simulated-time latencies: 20 exponential buckets
  /// from 1 ms to ~524 s.
  static Histogram latency();
  /// Default bounds for small nonnegative counts (undo churn): 0,1,2,4,...
  static Histogram counts();

  void add(double v);

  /// Accumulate another histogram with the same bounds (bucket-wise sum,
  /// exact count/sum, min/max widened). Throws std::invalid_argument on a
  /// bounds mismatch.
  void merge_from(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  /// Smallest bucket upper bound covering >= q of the mass (q in [0,1]);
  /// overflow reports the observed max.
  double quantile_bound(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] pairs with bounds()[i]; back() is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  friend class MetricsRegistry;  ///< from_json reconstructs the raw fields.
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 entries.
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, JSON in and out. Names are dotted paths
/// ("engine.mid_inserts", "lifecycle.replication_latency"); std::map keeps
/// emission order stable, so same metrics => byte-identical JSON.
class MetricsRegistry {
 public:
  void set_counter(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }
  void add_counter(const std::string& name, std::uint64_t delta) {
    counters_[name] += delta;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  /// Insert-or-get; `proto` supplies the bounds on first touch.
  Histogram& histogram(const std::string& name,
                       const Histogram& proto = Histogram::latency());

  /// Accumulate another registry into this one: counters and gauges sum
  /// (a merged registry reads as "totals across runs"), histograms merge
  /// bucket-wise. The multi-seed aggregation every sweep bench uses.
  void merge_from(const MetricsRegistry& other);

  /// Snapshot difference: what accrued AFTER `earlier` was taken, given
  /// both are cumulative snapshots of the same run (the per-epoch deltas
  /// Cluster::metrics_series yields). Counters subtract (missing-in-
  /// earlier reads as 0; saturating at 0 so a derived counter that shrank
  /// never wraps). Gauges keep this snapshot's point-in-time value.
  /// Histograms subtract bucket-wise when bounds match — min/max keep this
  /// snapshot's values, since interval extremes are not recoverable from
  /// two cumulative summaries — and copy this snapshot's histogram whole
  /// on a bounds mismatch.
  MetricsRegistry delta_from(const MetricsRegistry& earlier) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// One pretty-printed JSON document of the whole registry.
  std::string to_json() const;

  /// Parse a document produced by to_json(). Throws std::invalid_argument
  /// on malformed input. Round-trip invariant:
  /// from_json(r.to_json()).to_json() == r.to_json().
  static MetricsRegistry from_json(const std::string& json);

  friend bool operator==(const MetricsRegistry&,
                         const MetricsRegistry&) = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
