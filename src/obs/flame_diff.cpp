#include "obs/flame_diff.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace obs {

namespace {

struct Leaf {
  std::int64_t us = 0;
  std::uint64_t samples = 0;
};

void collect(const FlameNode& n, const std::string& path,
             std::map<std::string, Leaf>& out) {
  if (n.children.empty()) {
    if (!path.empty()) {
      out[path].us += n.self_us;
      out[path].samples += n.samples;
    }
    return;
  }
  for (const auto& [name, child] : n.children) {
    collect(child, path.empty() ? name : path + ';' + name, out);
  }
}

void put_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

FlameDiff FlameDiff::build(const FlameProfile& a, const FlameProfile& b) {
  FlameDiff d;
  d.epochs_a_ = a.epochs().size();
  d.epochs_b_ = b.epochs().size();
  if (d.epochs_a_ != d.epochs_b_) {
    d.notes_.push_back("epoch count changed: " + std::to_string(d.epochs_a_) +
                       " -> " + std::to_string(d.epochs_b_));
  }
  const std::size_t n = std::max(d.epochs_a_, d.epochs_b_);
  for (std::size_t i = 0; i < n; ++i) {
    const EpochProfile* ea = i < d.epochs_a_ ? &a.epochs()[i] : nullptr;
    const EpochProfile* eb = i < d.epochs_b_ ? &b.epochs()[i] : nullptr;
    if (ea != nullptr && eb != nullptr && ea->label != eb->label) {
      d.notes_.push_back("epoch " + std::to_string(i) + " regime changed: [" +
                         ea->label + "] -> [" + eb->label + "]");
    }
    std::map<std::string, Leaf> la, lb;
    if (ea != nullptr) collect(ea->root, "", la);
    if (eb != nullptr) collect(eb->root, "", lb);
    // Union of stages, std::map order; only changed rows become deltas.
    std::map<std::string, std::pair<Leaf, Leaf>> merged;
    for (const auto& [stage, leaf] : la) merged[stage].first = leaf;
    for (const auto& [stage, leaf] : lb) merged[stage].second = leaf;
    for (const auto& [stage, pair] : merged) {
      const Leaf& va = pair.first;
      const Leaf& vb = pair.second;
      if (va.us == vb.us && va.samples == vb.samples) continue;
      StageDelta sd;
      sd.epoch = i;
      sd.label_a = ea != nullptr ? ea->label : "";
      sd.label_b = eb != nullptr ? eb->label : "";
      sd.stage = stage;
      sd.us_a = va.us;
      sd.us_b = vb.us;
      sd.delta_us = vb.us - va.us;
      sd.samples_a = va.samples;
      sd.samples_b = vb.samples;
      d.deltas_.push_back(std::move(sd));
    }
  }
  std::stable_sort(d.deltas_.begin(), d.deltas_.end(),
                   [](const StageDelta& x, const StageDelta& y) {
                     const std::int64_t ax = x.delta_us < 0 ? -x.delta_us
                                                           : x.delta_us;
                     const std::int64_t ay = y.delta_us < 0 ? -y.delta_us
                                                            : y.delta_us;
                     if (ax != ay) return ax > ay;
                     if (x.epoch != y.epoch) return x.epoch < y.epoch;
                     return x.stage < y.stage;
                   });
  return d;
}

std::string FlameDiff::to_json() const {
  std::ostringstream os;
  os << "{\"differs\":" << (differs() ? "true" : "false")
     << ",\"epochs_a\":" << epochs_a_ << ",\"epochs_b\":" << epochs_b_
     << ",\"notes\":[";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    if (i) os << ',';
    os << '"';
    put_escaped(os, notes_[i]);
    os << '"';
  }
  os << "],\"deltas\":[";
  for (std::size_t i = 0; i < deltas_.size(); ++i) {
    const StageDelta& d = deltas_[i];
    if (i) os << ',';
    os << "{\"epoch\":" << d.epoch << ",\"label_a\":\"";
    put_escaped(os, d.label_a);
    os << "\",\"label_b\":\"";
    put_escaped(os, d.label_b);
    os << "\",\"stage\":\"";
    put_escaped(os, d.stage);
    os << "\",\"us_a\":" << d.us_a << ",\"us_b\":" << d.us_b
       << ",\"delta_us\":" << d.delta_us << ",\"samples_a\":" << d.samples_a
       << ",\"samples_b\":" << d.samples_b << '}';
  }
  os << "]}\n";
  return os.str();
}

std::string FlameDiff::markdown(std::size_t top) const {
  std::ostringstream os;
  if (!differs()) {
    os << "flame diff: no stage-weight changes across " << epochs_a_
       << " epoch(s)\n";
    return os.str();
  }
  for (const std::string& note : notes_) os << "> note: " << note << '\n';
  if (deltas_.empty()) return os.str();
  os << "| rank | epoch | regime | stage | baseline_us | candidate_us | "
        "delta_us | samples |\n";
  os << "|---:|---:|---|---|---:|---:|---:|---:|\n";
  const std::size_t limit =
      top == 0 ? deltas_.size() : std::min(top, deltas_.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const StageDelta& d = deltas_[i];
    os << "| " << (i + 1) << " | " << d.epoch << " | "
       << (d.label_a == d.label_b ? d.label_a
                                  : d.label_a + " -> " + d.label_b)
       << " | " << d.stage << " | " << d.us_a << " | " << d.us_b << " | "
       << (d.delta_us > 0 ? "+" : "") << d.delta_us << " | " << d.samples_a
       << " -> " << d.samples_b << " |\n";
  }
  if (limit < deltas_.size()) {
    os << "(" << (deltas_.size() - limit) << " smaller delta(s) omitted)\n";
  }
  return os.str();
}

}  // namespace obs
