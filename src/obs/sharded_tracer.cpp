#include "obs/sharded_tracer.hpp"

#include <algorithm>

namespace obs {

ShardedTracer::ShardedTracer(std::size_t num_nodes,
                             std::size_t ring_capacity) {
  shards_.reserve(num_nodes + 1);
  for (std::size_t i = 0; i < num_nodes + 1; ++i) {
    shards_.push_back(std::make_unique<Tracer>(ring_capacity));
    shards_.back()->set_sequencer(&seq_);
  }
}

void ShardedTracer::add_sink(Sink* sink) {
  for (auto& s : shards_) s->add_sink(sink);
}

std::uint64_t ShardedTracer::recorded() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->recorded();
  return n;
}

std::uint64_t ShardedTracer::evicted() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->evicted();
  return n;
}

std::vector<std::uint64_t> ShardedTracer::type_counts() const {
  std::vector<std::uint64_t> out(kNumEventTypes, 0);
  for (const auto& s : shards_) {
    const std::vector<std::uint64_t> c = s->type_counts();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += c[i];
  }
  return out;
}

std::size_t ShardedTracer::ring_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->ring_size();
  return n;
}

std::vector<Event> ShardedTracer::ring() const {
  // Gather each shard's retained (stamp, event) pairs; each shard's list is
  // already ascending in stamp, so a k-way index merge by (time, seq)
  // reconstructs the global record order. time is compared first to match
  // the merge a real runtime would do off a hybrid clock; within one run
  // the stamp alone already decides (time never decreases along stamps).
  struct Cursor {
    std::vector<Event> events;
    std::vector<std::uint64_t> seqs;
    std::size_t at = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(shards_.size());
  std::size_t total = 0;
  for (const auto& s : shards_) {
    Cursor c;
    c.events = s->ring();
    c.seqs = s->ring_seqs();
    total += c.events.size();
    cursors.push_back(std::move(c));
  }
  std::vector<Event> out;
  out.reserve(total);
  while (out.size() < total) {
    std::size_t best = cursors.size();
    for (std::size_t k = 0; k < cursors.size(); ++k) {
      const Cursor& c = cursors[k];
      if (c.at >= c.events.size()) continue;
      if (best == cursors.size()) {
        best = k;
        continue;
      }
      const Cursor& b = cursors[best];
      const double tc = c.events[c.at].time, tb = b.events[b.at].time;
      if (tc < tb || (tc == tb && c.seqs[c.at] < b.seqs[b.at])) best = k;
    }
    Cursor& c = cursors[best];
    out.push_back(c.events[c.at++]);
  }
  return out;
}

std::vector<Event> ShardedTracer::slice_around(std::uint64_t ts_logical,
                                               sim::NodeId ts_node,
                                               std::size_t context) const {
  return slice_window(ring(), ts_logical, ts_node, context);
}

}  // namespace obs
