// Canonical metric names — one constants header instead of string literals
// scattered across exporters and the tests/benches that read them back.
//
// The registry (metrics.hpp) keys everything by dotted path; before this
// header the same path was spelled independently at the export site and at
// every consumer ("checker.violations" alone appeared in the streaming
// checker, two test suites and a bench), so a rename silently decoupled
// them — the consumer read 0 from a key nobody wrote anymore. Mirroring the
// EventType name table's drift guards, every name lives here once and
// kAllMetricNames enumerates them for the uniqueness/round-trip regression
// (tests/test_incident.cpp).
//
// Only cross-referenced families are hoisted: checker.* (streaming
// checker), epoch.* (cluster flame derivation), causal.*/lifecycle.*
// (lifecycle tracker), broadcast.* (BroadcastStats). engine.*/net.*/
// cluster.*/retained.*/trace.* names appear at exactly one export site
// each and stay there.
#pragma once

#include <array>

namespace obs::metric_names {

// --- checker.* — analysis::StreamingChecker::export_metrics -------------
inline constexpr const char* kCheckerTxsIngested = "checker.txs_ingested";
inline constexpr const char* kCheckerTxsFinalized = "checker.txs_finalized";
inline constexpr const char* kCheckerDeliveries = "checker.deliveries";
inline constexpr const char* kCheckerViolations = "checker.violations";
inline constexpr const char* kCheckerDivergenceEvents =
    "checker.divergence_events";
inline constexpr const char* kCheckerOrderViolations =
    "checker.order_violations";
inline constexpr const char* kCheckerPinnedWindows = "checker.pinned_windows";
inline constexpr const char* kCheckerIncidentSeeds = "checker.incident_seeds";
inline constexpr const char* kCheckerPendingNow = "checker.pending_now";
inline constexpr const char* kCheckerPeakPending = "checker.peak_pending";
inline constexpr const char* kCheckerPeakLedgerEntries =
    "checker.peak_ledger_entries";
inline constexpr const char* kCheckerPeakShadowEntries =
    "checker.peak_shadow_entries";
inline constexpr const char* kCheckerFinalizeLag = "checker.finalize_lag";
inline constexpr const char* kCheckerDetectionLatency =
    "checker.detection_latency";

// --- epoch.* — shard::Cluster::metrics flame derivation -----------------
inline constexpr const char* kEpochCount = "epoch.count";
inline constexpr const char* kEpochTransitions = "epoch.transitions";
inline constexpr const char* kEpochCoalesced = "epoch.coalesced";
inline constexpr const char* kEpochUpdatesProfiled = "epoch.updates_profiled";
inline constexpr const char* kEpochUpdatesIncomplete =
    "epoch.updates_incomplete";
inline constexpr const char* kEpochCriticalPathUsTotal =
    "epoch.critical_path_us_total";
inline constexpr const char* kEpochCriticalPathUsMax =
    "epoch.critical_path_us_max";
inline constexpr const char* kEpochQuietSeconds = "epoch.quiet_seconds";
inline constexpr const char* kEpochDegradedSeconds = "epoch.degraded_seconds";
inline constexpr const char* kEpochCriticalPathSeconds =
    "epoch.critical_path_seconds";
/// Family prefix for the per-stage dominant counts
/// ("epoch.dominant.<stage>"); the stage suffix is data, not a name.
inline constexpr const char* kEpochDominantPrefix = "epoch.dominant.";

// --- causal.* / lifecycle.* — obs::LifecycleTracker::export_to ----------
inline constexpr const char* kCausalDeliverLatency = "causal.deliver_latency";
inline constexpr const char* kCausalFirstDeliverLatency =
    "causal.first_deliver_latency";
inline constexpr const char* kCausalLastDeliverLatency =
    "causal.last_deliver_latency";
inline constexpr const char* kCausalMidInsertLatency =
    "causal.mid_insert_latency";
inline constexpr const char* kCausalFanoutDegree = "causal.fanout_degree";
inline constexpr const char* kLifecycleUpdatesOriginated =
    "lifecycle.updates_originated";
inline constexpr const char* kLifecycleUpdatesFullyReplicated =
    "lifecycle.updates_fully_replicated";
inline constexpr const char* kLifecycleUndoChurnTotal =
    "lifecycle.undo_churn_total";
inline constexpr const char* kLifecycleDivergenceMaxMissing =
    "lifecycle.divergence_max_missing";
inline constexpr const char* kLifecycleReplicationLatency =
    "lifecycle.replication_latency";
inline constexpr const char* kLifecycleUndoChurn = "lifecycle.undo_churn";

// --- broadcast.* — net::BroadcastStats::export_to -----------------------
inline constexpr const char* kBroadcastOriginated = "broadcast.originated";
inline constexpr const char* kBroadcastDelivered = "broadcast.delivered";
inline constexpr const char* kBroadcastDuplicatesDropped =
    "broadcast.duplicates_dropped";
inline constexpr const char* kBroadcastCausallyBuffered =
    "broadcast.causally_buffered";
inline constexpr const char* kBroadcastAntiEntropyRounds =
    "broadcast.anti_entropy_rounds";
inline constexpr const char* kBroadcastAntiEntropyRepairs =
    "broadcast.anti_entropy_repairs";
inline constexpr const char* kBroadcastRepairsTruncated =
    "broadcast.repairs_truncated";
inline constexpr const char* kBroadcastContinuationDigests =
    "broadcast.continuation_digests";
inline constexpr const char* kBroadcastStorePruned = "broadcast.store_pruned";
inline constexpr const char* kBroadcastRoundsSkippedDown =
    "broadcast.rounds_skipped_down";
inline constexpr const char* kBroadcastAmnesiaResets =
    "broadcast.amnesia_resets";
inline constexpr const char* kBroadcastOutboxReplays =
    "broadcast.outbox_replays";
inline constexpr const char* kBroadcastStaleResets = "broadcast.stale_resets";
inline constexpr const char* kBroadcastMidBroadcastCrashes =
    "broadcast.mid_broadcast_crashes";
inline constexpr const char* kBroadcastByzCorrupted =
    "broadcast.byz_corrupted";
inline constexpr const char* kBroadcastByzCorruptNoops =
    "broadcast.byz_corrupt_noops";
inline constexpr const char* kBroadcastByzDuplicated =
    "broadcast.byz_duplicated";
inline constexpr const char* kBroadcastByzReordered =
    "broadcast.byz_reordered";
inline constexpr const char* kBroadcastFloodBatches =
    "broadcast.flood_batches";
inline constexpr const char* kBroadcastFloodBatchedWires =
    "broadcast.flood_batched_wires";
inline constexpr const char* kBroadcastOutboxCommits =
    "broadcast.outbox_commits";
inline constexpr const char* kBroadcastOutboxRecordsSynced =
    "broadcast.outbox_records_synced";

/// Every hoisted name (prefix constants excluded — they are families, not
/// keys). The drift-guard test asserts pairwise uniqueness and that each
/// name survives a MetricsRegistry JSON round trip.
inline constexpr std::array<const char*, 57> kAllMetricNames = {
    kCheckerTxsIngested,
    kCheckerTxsFinalized,
    kCheckerDeliveries,
    kCheckerViolations,
    kCheckerDivergenceEvents,
    kCheckerOrderViolations,
    kCheckerPinnedWindows,
    kCheckerIncidentSeeds,
    kCheckerPendingNow,
    kCheckerPeakPending,
    kCheckerPeakLedgerEntries,
    kCheckerPeakShadowEntries,
    kCheckerFinalizeLag,
    kCheckerDetectionLatency,
    kEpochCount,
    kEpochTransitions,
    kEpochCoalesced,
    kEpochUpdatesProfiled,
    kEpochUpdatesIncomplete,
    kEpochCriticalPathUsTotal,
    kEpochCriticalPathUsMax,
    kEpochQuietSeconds,
    kEpochDegradedSeconds,
    kEpochCriticalPathSeconds,
    kCausalDeliverLatency,
    kCausalFirstDeliverLatency,
    kCausalLastDeliverLatency,
    kCausalMidInsertLatency,
    kCausalFanoutDegree,
    kLifecycleUpdatesOriginated,
    kLifecycleUpdatesFullyReplicated,
    kLifecycleUndoChurnTotal,
    kLifecycleDivergenceMaxMissing,
    kLifecycleReplicationLatency,
    kLifecycleUndoChurn,
    kBroadcastOriginated,
    kBroadcastDelivered,
    kBroadcastDuplicatesDropped,
    kBroadcastCausallyBuffered,
    kBroadcastAntiEntropyRounds,
    kBroadcastAntiEntropyRepairs,
    kBroadcastRepairsTruncated,
    kBroadcastContinuationDigests,
    kBroadcastStorePruned,
    kBroadcastRoundsSkippedDown,
    kBroadcastAmnesiaResets,
    kBroadcastOutboxReplays,
    kBroadcastStaleResets,
    kBroadcastMidBroadcastCrashes,
    kBroadcastByzCorrupted,
    kBroadcastByzCorruptNoops,
    kBroadcastByzDuplicated,
    kBroadcastByzReordered,
    kBroadcastFloodBatches,
    kBroadcastFloodBatchedWires,
    kBroadcastOutboxCommits,
    kBroadcastOutboxRecordsSynced,
};

}  // namespace obs::metric_names
