// A SHARD node: full replica + decision execution + update broadcast.
//
// Paper section 1.2 flow, implemented verbatim:
//   1. A transaction is submitted at its origin node. The *decision part*
//      runs once, against the node's current merged state (the apparent
//      state — the effects of the prefix subsequence of transactions this
//      node has so far received).
//   2. The decision's external actions fire immediately and are never
//      redone.
//   3. The decision's *update* gets a globally unique timestamp and is
//      broadcast reliably to all nodes (including merged locally).
//   4. Every node merges every update into its timestamp-ordered log,
//      undoing/redoing as needed (UpdateLog), so replicas converge to the
//      same state once they know the same updates — mutual consistency
//      without any inter-node concurrency control.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "core/model.hpp"
#include "core/prefix.hpp"
#include "core/timestamp.hpp"
#include "net/broadcast.hpp"
#include "obs/tracer.hpp"
#include "runtime/api.hpp"
#include "runtime/sim_backend.hpp"
#include "shard/update_log.hpp"
#include "sim/crash.hpp"

namespace obs {
class MetricsRegistry;
}

namespace shard {

template <core::Application App>
class StreamObserver;

/// Everything the origin records about a transaction it initiated; the
/// cluster assembles the formal Execution from these. Hoisted out of Node
/// so the record type is identical across log layouts (Node<App, kSoA> and
/// Node<App, kAoS> produce interchangeable records — the differential
/// harnesses compare them directly).
template <core::Application App>
struct TxRecord {
  core::Timestamp ts;
  core::NodeId origin = 0;
  sim::Time real_time = 0.0;
  typename App::Request request;
  /// The prefix subsequence (paper section 3.1): every transaction merged
  /// here at decision time, interned as per-origin delivered counts
  /// (core/prefix.hpp) — O(#nodes) per record instead of O(history).
  /// Expand via Cluster::prefix_resolver() to recover the explicit
  /// timestamp set.
  core::PrefixRef prefix;
  typename App::Update update;
  std::vector<core::ExternalAction> external_actions;
  /// Mixed-mode: true if this ran with the serializable (complete-prefix)
  /// protocol; decided_time - real_time is then the waiting latency.
  bool serializable = false;
  sim::Time decided_time = 0.0;
};

template <core::Application App, LogLayout Layout = LogLayout::kSoA>
class Node {
 public:
  using State = typename App::State;
  using Update = typename App::Update;
  using Request = typename App::Request;

  /// The update envelope that travels through the broadcast layer.
  struct Envelope {
    core::Timestamp ts;
    Update update;
  };

  using Record = TxRecord<App>;

  /// The node runs against the redesigned execution API — an Executor for
  /// its clock/timers and a Transport for the broadcast layer's datagrams —
  /// so the same protocol code drives the deterministic simulator and the
  /// threaded runtime.
  Node(core::NodeId id, runtime::Executor& executor,
       runtime::Transport& transport, std::size_t cluster_size,
       net::BroadcastOptions broadcast_options, std::size_t checkpoint_interval,
       std::uint64_t seed, bool enable_compaction = false,
       obs::Tracer* tracer = nullptr, std::size_t max_checkpoints = 0)
      : id_(id),
        clock_(id),
        log_(checkpoint_interval, max_checkpoints),
        peer_announcements_(cluster_size),
        enable_compaction_(enable_compaction),
        tracer_(tracer),
        exec_(&executor),
        broadcast_(executor, transport, id, cluster_size, broadcast_options,
                   seed,
                   [this](const typename net::ReliableBroadcast<Envelope>::Wire&
                              wire) { on_deliver(wire); }) {
    init_hooks(broadcast_options);
  }

  /// One-release adapter for callers still wired to the concrete simulator;
  /// behaves exactly like constructing against backend.executor()/transport()
  /// of a runtime::SimBackend over the same scheduler/network.
  [[deprecated("construct with (runtime::Executor&, runtime::Transport&) — "
               "the sim::Network& form is a one-release adapter")]]
  Node(core::NodeId id, sim::Network& network, std::size_t cluster_size,
       net::BroadcastOptions broadcast_options, std::size_t checkpoint_interval,
       std::uint64_t seed, bool enable_compaction = false,
       obs::Tracer* tracer = nullptr, std::size_t max_checkpoints = 0)
      : id_(id),
        clock_(id),
        log_(checkpoint_interval, max_checkpoints),
        peer_announcements_(cluster_size),
        enable_compaction_(enable_compaction),
        tracer_(tracer),
        owned_exec_(std::make_unique<runtime::SimExecutor>(
            network.scheduler())),
        owned_net_(std::make_unique<runtime::SimTransport>(network)),
        exec_(owned_exec_.get()),
        broadcast_(*owned_exec_, *owned_net_, id, cluster_size,
                   broadcast_options, seed,
                   [this](const typename net::ReliableBroadcast<Envelope>::Wire&
                              wire) { on_deliver(wire); }) {
    init_hooks(broadcast_options);
  }

 private:
  void init_hooks(const net::BroadcastOptions& broadcast_options) {
    log_.set_tracer(tracer_, id_, [this] { return exec_->now(); });
    broadcast_.set_tracer(tracer_);
    if (broadcast_options.byzantine.enabled) {
      // Timestamp-preserving corruption: substitute only the update field,
      // so the tampered envelope still merges at its legitimate position
      // (a forged timestamp would trip UpdateLog's uniqueness invariant
      // rather than model a plausibly-wrong replica). A draw whose donor
      // equals the original changed nothing — report it unapplied so the
      // sensitivity tests can count it as provably masked.
      broadcast_.set_corrupt_hook([](Envelope& target, const Envelope& donor) {
        if (donor.update == target.update) return false;
        target.update = donor.update;
        return true;
      });
    }
    broadcast_.set_announce_hooks(
        [this] { return promise(); },
        [this](core::NodeId src, std::uint64_t logical, core::NodeId node,
               std::uint64_t issued) {
          on_announce(src, core::Timestamp{logical, node}, issued);
        });
  }

 public:
  /// Arm protocol timers.
  void start() { broadcast_.start(); }

  /// Run one transaction originated here, now. Returns a copy of the
  /// record (also retained internally; a reference would dangle when the
  /// next submit grows the record vector). Throws if the node is crashed —
  /// use try_submit for workloads that must tolerate downtime.
  Record submit(const Request& request, sim::Time now) {
    if (down_) throw std::logic_error("submit on a crashed node");
    ++log_.mutable_stats().decisions_run;
    Record rec;
    rec.origin = id_;
    rec.real_time = now;
    rec.request = request;
    // The decision part observes the current merged state; its prefix
    // subsequence is exactly the set of updates merged so far — which is
    // the set the broadcast layer has delivered, interned in O(#nodes).
    // Compaction needs no extra bookkeeping: folding changes storage, not
    // knowledge, and the delivered counts already cover folded entries.
    rec.prefix = broadcast_.delivered_prefix();
    core::DecisionResult<Update> decision = App::decide(request, log_.state());
    rec.update = std::move(decision.update);
    rec.external_actions = std::move(decision.external_actions);
    // Timestamp strictly above everything merged here (LamportClock
    // invariant), so the prefix really is a subsequence of the predecessors.
    rec.ts = clock_.tick();
    rec.decided_time = now;
    originated_.push_back(rec);
    if (tracer_) {
      tracer_->record(obs::EventType::kBroadcastOriginate, now, id_,
                      rec.ts.logical, rec.ts.node, broadcast_.own_issued() + 1);
    }
    // Streaming checkers learn the TRUE record before the broadcast can
    // deliver (and possibly corrupt) it anywhere — including locally.
    if (stream_obs_) {
      stream_obs_->on_originate(originated_.back(),
                                broadcast_.own_issued() + 1, now);
    }
    // Broadcast (delivers locally first, merging into our own log).
    broadcast_.broadcast(Envelope{rec.ts, originated_.back().update});
    return originated_.back();
  }

  /// Availability-aware submission: a request reaching a crashed origin is
  /// rejected (counted, never silently executed) — the client sees an
  /// unavailable node and can retry elsewhere. Returns the record on
  /// success, nullopt on rejection.
  std::optional<Record> try_submit(const Request& request, sim::Time now) {
    if (down_) {
      ++log_.mutable_stats().rejected_submissions;
      return std::nullopt;
    }
    return submit(request, now);
  }

  /// Mixed-mode extension (paper sections 3.3 and 6): run this transaction
  /// SERIALIZABLY — with a provably complete prefix. A timestamp position
  /// ts_p is reserved now; the decision is deferred until every peer has
  /// announced a Lamport counter >= ts_p.logical ("I will issue no more
  /// transactions with timestamp earlier than ts_p") AND all their
  /// transactions issued up to that announcement have been merged here.
  /// The decision then runs against the state of exactly the entries with
  /// timestamp < ts_p: the complete prefix. Blocks (logically) through
  /// partitions — the availability price of serializability.
  void submit_serializable(const Request& request, sim::Time now) {
    if (down_) {
      ++log_.mutable_stats().rejected_submissions;
      return;
    }
    PendingSerial p;
    p.request = request;
    p.reserved_ts = clock_.tick();
    p.enqueue_time = now;
    const core::Timestamp reserved = p.reserved_ts;
    pending_.push_back(std::move(p));
    if (stream_obs_) stream_obs_->on_reserve(id_, reserved);
    try_run_pending(now);
  }

  /// Serializable submissions still waiting for peer promises.
  std::size_t pending_serializable() const { return pending_.size(); }

  /// Crash the node at simulated time `now`. The node stops executing,
  /// gossiping, and receiving (the network refuses delivery); pending
  /// serializable reservations are volatile and die with it (their clients
  /// observe unavailability — counted as rejections). Idempotent.
  ///
  /// What happens to *state* is decided at restart time by the recovery
  /// mode: conceptually the crash wipes volatile memory, and restart either
  /// reloads stable storage (kDurable) or finds none (kAmnesia). Already-
  /// executed decisions are in neither case re-run, and their external
  /// actions — fired at decision time, recorded in the stable outbox before
  /// firing — are never re-fired (paper section 1.2: external actions "can
  /// never be undone").
  void crash(sim::Time now) {
    if (down_) return;
    down_ = true;
    down_since_ = now;
    auto& st = log_.mutable_stats();
    ++st.crashes;
    st.rejected_submissions += pending_.size();
    pending_.clear();
    broadcast_.set_down(true);
    if (tracer_) tracer_->record(obs::EventType::kCrash, now, id_);
    // Reservations are volatile: the observer drops its copies too.
    if (stream_obs_) stream_obs_->on_crash(id_, now);
  }

  /// Restart a crashed node at `now`.
  ///
  ///  * kDurable: the merged log survived on stable storage (the engine's
  ///    last checkpoint plus the log suffix — exactly what UpdateLog holds);
  ///    only updates originated while down are missing, and the ordinary
  ///    anti-entropy digests fetch them.
  ///  * kAmnesia: volatile replication state is gone. The log restarts from
  ///    the application's initial state, peer promises and causal buffers
  ///    are dropped, and everything is resynchronized — the node's own
  ///    transactions replay from its stable outbox, the rest arrives
  ///    through repair. The Lamport counter survives in the outbox (each
  ///    record carries its timestamp), so fresh transactions keep receiving
  ///    globally unique timestamps above everything this node ever issued
  ///    or merged.
  ///  * kStaleDisk: stable storage survived but lost its recent suffix —
  ///    the node resumes from a *stale* checkpoint holding only the oldest
  ///    `keep_fraction` of its retained log. Correctness rests on two
  ///    facts: dependencies always carry strictly smaller timestamps than
  ///    their dependents (the Lamport tick is above everything merged), so
  ///    a timestamp-prefix of the merged log is causally closed; and an
  ///    origin's seqs appear in the merged log in increasing timestamp
  ///    order, so the surviving prefix induces contiguous per-origin
  ///    delivered counts — exactly the rewound vector handed to
  ///    ReliableBroadcast::restart_stale. Requires causal broadcast (the
  ///    Cluster validates); the truncated tail re-merges through outbox
  ///    replay and anti-entropy, exercising deep undo/redo.
  ///
  /// `catch_up_target` is measurement-only omniscience supplied by the
  /// cluster: the number of updates originated cluster-wide by restart
  /// time. Reaching it ends the recovery window (recovery_lag,
  /// catch_up_updates in EngineStats). It never influences protocol
  /// behavior. Idempotent (no-op if the node is up).
  void restart(sim::RecoveryMode mode, sim::Time now,
               std::uint64_t catch_up_target = 0, double keep_fraction = 1.0) {
    if (!down_) return;
    down_ = false;
    auto& st = log_.mutable_stats();
    ++st.recoveries;
    st.downtime += now - down_since_;
    if (tracer_) {
      tracer_->record(obs::EventType::kRestart, now, id_, 0, 0,
                      static_cast<std::uint64_t>(mode));
    }
    restart_time_ = now;
    catch_up_target_ = catch_up_target;
    catching_up_ = true;
    if (mode == sim::RecoveryMode::kAmnesia) {
      log_.reset_to_initial();
      for (auto& a : peer_announcements_) a = Announcement{};
      // Observer mirrors the wipe BEFORE restart_amnesia: the outbox
      // replay below re-delivers through on_deliver, which must land in an
      // already-reset shadow.
      if (stream_obs_) stream_obs_->on_restart(id_, mode, 0, now);
      // Clears volatile broadcast state, then replays the stable outbox
      // (re-merging our own updates into the fresh log via on_deliver).
      broadcast_.restart_amnesia();
    } else if (mode == sim::RecoveryMode::kStaleDisk) {
      // Rewind to the stale checkpoint: keep the oldest keep_fraction of
      // the retained entries and derive the matching per-origin delivered
      // counts by walking the dropped suffix. Peer promises are monotone
      // facts about peers and survive; the broadcast rewind re-announces
      // our own truncated updates from the stable outbox.
      const std::size_t keep_n = static_cast<std::size_t>(
          keep_fraction * static_cast<double>(log_.size()));
      std::vector<std::uint64_t> keep = broadcast_.delivered_vector();
      for (std::size_t i = keep_n; i < log_.size(); ++i) {
        --keep[log_.ts_at(i).node];
      }
      log_.truncate_suffix(keep_n);
      // Same ordering constraint as amnesia: shadow rewind precedes the
      // broadcast rewind's outbox replay.
      if (stream_obs_) stream_obs_->on_restart(id_, mode, keep_n, now);
      broadcast_.restart_stale(keep);
    } else {
      if (stream_obs_) stream_obs_->on_restart(id_, mode, log_.size(), now);
      broadcast_.set_down(false);
    }
    check_caught_up(now);
  }

  bool down() const { return down_; }
  /// Still re-merging updates missed before/during the last crash.
  bool catching_up() const { return catching_up_; }

  /// Fault injection: arm the broadcast-layer probe that crashes this node
  /// between the stable-outbox append and the first flood send (the
  /// write-ahead intention-log boundary; sim::MidBroadcastCrash). The hook
  /// receives the origin seq and returns true iff it crashed the node.
  void set_mid_broadcast_crash_hook(
      typename net::ReliableBroadcast<Envelope>::MidBroadcastCrashFn hook) {
    broadcast_.set_mid_broadcast_crash_hook(std::move(hook));
  }

  /// Attach a streaming observer (analysis::StreamingChecker or any other
  /// StreamObserver). Must be wired before traffic starts; the observer
  /// sees originations before their broadcast, deliveries after their
  /// merge, and crash/restart transitions in recovery order. Nullptr
  /// detaches. Observation only — the protocol never reads it back.
  void set_stream_observer(StreamObserver<App>* obs) { stream_obs_ = obs; }

  const State& state() const { return log_.state(); }
  const UpdateLog<App, Layout>& log() const { return log_; }
  core::NodeId id() const { return id_; }
  const std::vector<Record>& originated() const { return originated_; }
  const EngineStats& engine_stats() const { return log_.stats(); }
  const net::BroadcastStats& broadcast_stats() const {
    return broadcast_.stats();
  }
  /// Updates merged here, including any compacted into the base.
  std::uint64_t updates_known() const { return log_.total_merged(); }
  /// Log entries currently retained (the storage compaction saves).
  std::size_t entries_retained() const { return log_.size(); }
  /// Wire messages held in the broadcast repair store (pruning shrinks it).
  std::size_t repair_store_retained() const {
    return broadcast_.store_retained();
  }
  /// State snapshots held by the merge engine (max_checkpoints bounds it).
  std::size_t checkpoints_retained() const {
    return log_.checkpoints_retained();
  }
  /// Prefix slots retained across every originated record — the E20
  /// memory proxy that interning keeps O(#records * #nodes) instead of
  /// O(#records * history).
  std::size_t prefix_slots_retained() const {
    std::size_t n = 0;
    for (const Record& r : originated_) n += r.prefix.slots();
    return n;
  }

 private:
  struct PendingSerial {
    Request request;
    core::Timestamp reserved_ts;
    sim::Time enqueue_time = 0.0;
  };
  struct Announcement {
    core::Timestamp promise;  ///< sender issues nothing with ts < promise
    std::uint64_t issued = 0;
    bool seen = false;
  };

  void on_deliver(const typename net::ReliableBroadcast<Envelope>::Wire& wire) {
    // Fold the remote timestamp into our clock BEFORE any future local
    // transaction, preserving "local timestamps exceed all merged ones".
    clock_.observe(wire.payload.ts);
    log_.insert({wire.payload.ts, wire.payload.update});
    // The observer re-merges the TRUE update (looked up by origin seq from
    // its own ledger — the wire payload may have been corrupted en route)
    // and compares our post-merge state against its clean shadow.
    if (stream_obs_) {
      stream_obs_->on_deliver(id_, wire.origin, wire.origin_seq,
                              wire.payload.ts, log_.state(), exec_->now());
    }
    if (catching_up_) {
      ++log_.mutable_stats().catch_up_updates;
      check_caught_up(exec_->now());
    }
    try_run_pending(exec_->now());
  }

  /// Recovery-window bookkeeping: the window closes once this node again
  /// knows every update the cluster had originated by the restart.
  void check_caught_up(sim::Time now) {
    if (!catching_up_ || updates_known() < catch_up_target_) return;
    catching_up_ = false;
    log_.mutable_stats().recovery_lag += now - restart_time_;
  }

  /// Our promise: we will issue nothing with a timestamp below this. With
  /// reservations pending, that is the earliest reserved timestamp; else
  /// the next tick's lower bound (counter+1, self).
  std::pair<std::uint64_t, core::NodeId> promise() const {
    if (!pending_.empty()) {
      const core::Timestamp& t = pending_.front().reserved_ts;
      return {t.logical, t.node};
    }
    return {clock_.counter() + 1, id_};
  }

  void on_announce(core::NodeId src, const core::Timestamp& promise_ts,
                   std::uint64_t issued) {
    auto& a = peer_announcements_[src];
    // Announcements can arrive out of order; keep the strongest promise,
    // paired with the largest issued-count seen (both are monotone in the
    // sender's send order).
    if (!a.seen || promise_ts >= a.promise) {
      a.promise = promise_ts;
      a.issued = std::max(a.issued, issued);
      a.seen = true;
    }
    // A peer's promise also advances our clock, so counters propagate even
    // across quiescent nodes and every reservation is eventually covered
    // (liveness of the waiting protocol). (logical-1: a promise of
    // (L, node) only says future timestamps are >= that; observing L-1
    // keeps our next tick possibly equal to L, which the node tiebreak
    // disambiguates.)
    clock_.observe(core::Timestamp{promise_ts.logical - 1, src});
    try_run_pending(exec_->now());
    if (enable_compaction_) maybe_compact();
  }

  /// The [SL] discard rule: everything below the cluster-wide stability
  /// point — min over all nodes (self included) of their promise, taken
  /// only from peers whose issued updates have all been merged here — can
  /// never be preceded by a new arrival, so it folds into the base state.
  void maybe_compact() {
    const auto [own_logical, own_node] = promise();
    core::Timestamp stable{own_logical, own_node};
    // merged_prefix, not delivered_vector: only a contiguous per-origin
    // prefix proves "everything m issued by then is merged here" (the
    // non-causal delivery count can include later seqs while an earlier,
    // lower-timestamped one is still in flight — folding past it would
    // let an arrival land below the compaction cut).
    const auto& delivered = broadcast_.merged_prefix();
    for (core::NodeId m = 0; m < peer_announcements_.size(); ++m) {
      if (m == id_) continue;
      const Announcement& a = peer_announcements_[m];
      if (!a.seen || delivered[m] < a.issued) return;  // not stable yet
      stable = std::min(stable, a.promise);
    }
    if (!(log_.base_cut() < stable)) return;
    // Knowledge (prefix recording) survives even though the updates'
    // storage is discarded: the interned prefixes reference delivered
    // counts, which folding never rewinds.
    log_.compact_before(stable);
  }

  /// Promise check for the front pending transaction: every peer m
  /// promised to issue nothing with timestamp < promise_m, with
  /// promise_m >= ts_p (so every future m-transaction has a timestamp
  /// strictly above ts_p — node ids differ), and everything m had issued
  /// by that announcement has been merged here. Then the entries with
  /// ts < ts_p form the complete prefix of position ts_p, now and forever.
  bool promises_cover(const core::Timestamp& ts_p) const {
    // Contiguous merged prefix for the same reason as maybe_compact: a
    // complete prefix needs every issued update merged, not merely an
    // equal count of (possibly later) ones.
    const auto& delivered = broadcast_.merged_prefix();
    for (core::NodeId m = 0; m < peer_announcements_.size(); ++m) {
      if (m == id_) continue;
      const Announcement& a = peer_announcements_[m];
      if (!a.seen || a.promise < ts_p) return false;
      if (delivered[m] < a.issued) return false;
    }
    return true;
  }

  void try_run_pending(sim::Time now) {
    while (!pending_.empty() && promises_cover(pending_.front().reserved_ts)) {
      PendingSerial p = std::move(pending_.front());
      pending_.pop_front();
      run_reserved(p, now);
    }
  }

  void run_reserved(const PendingSerial& p, sim::Time now) {
    ++log_.mutable_stats().decisions_run;
    Record rec;
    rec.origin = id_;
    rec.real_time = p.enqueue_time;  // initiation time (timed executions)
    rec.request = p.request;
    rec.ts = p.reserved_ts;
    // The complete prefix: exactly the merged entries with ts < ts_p. The
    // interned reference records everything delivered plus the reserved cut;
    // expansion filters to timestamps below it (core::PrefixRef::cut).
    rec.prefix = broadcast_.delivered_prefix();
    rec.prefix.cut = p.reserved_ts;
    const State view = log_.state_before(p.reserved_ts);
    core::DecisionResult<Update> decision = App::decide(p.request, view);
    rec.update = std::move(decision.update);
    rec.external_actions = std::move(decision.external_actions);
    rec.serializable = true;
    rec.decided_time = now;
    originated_.push_back(rec);
    if (tracer_) {
      tracer_->record(obs::EventType::kBroadcastOriginate, now, id_,
                      rec.ts.logical, rec.ts.node, broadcast_.own_issued() + 1);
    }
    if (stream_obs_) {
      stream_obs_->on_originate(originated_.back(),
                                broadcast_.own_issued() + 1, now);
    }
    broadcast_.broadcast(Envelope{rec.ts, originated_.back().update});
  }

  core::NodeId id_;
  core::LamportClock clock_;
  UpdateLog<App, Layout> log_;
  std::vector<Record> originated_;
  std::vector<Announcement> peer_announcements_;
  std::deque<PendingSerial> pending_;
  // Crash/recovery (sim/crash.hpp): down_ gates every activity; the rest is
  // recovery-window instrumentation.
  bool down_ = false;
  bool catching_up_ = false;
  sim::Time down_since_ = 0.0;
  sim::Time restart_time_ = 0.0;
  std::uint64_t catch_up_target_ = 0;
  bool enable_compaction_ = false;
  obs::Tracer* tracer_ = nullptr;  ///< optional execution tracing
  StreamObserver<App>* stream_obs_ = nullptr;  ///< optional online checking
  /// Owned backend adapters for the deprecated sim::Network& constructor;
  /// null when the caller supplied the runtime interfaces directly.
  std::unique_ptr<runtime::SimExecutor> owned_exec_;
  std::unique_ptr<runtime::SimTransport> owned_net_;
  runtime::Executor* exec_;
  net::ReliableBroadcast<Envelope> broadcast_;
};

/// Online observation interface for the node's transaction pipeline — the
/// hook surface behind analysis::StreamingChecker. Callbacks fire
/// synchronously inside the node at precisely specified points (see each
/// method); implementations must not call back into the node.
template <core::Application App>
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;

  /// A transaction decided at its origin, BEFORE its broadcast (so the
  /// observer knows the true record before any — possibly Byzantine —
  /// delivery of it, including the origin's own). `origin_seq` is the
  /// 1-based broadcast sequence number the envelope will carry.
  virtual void on_originate(const TxRecord<App>& rec, std::uint64_t origin_seq,
                            sim::Time now) = 0;

  /// An update merged at node `at`, AFTER the log insert. `origin`/
  /// `origin_seq` identify the originating record; `ts` is the envelope's
  /// (tamper-proof) timestamp; `state` is the node's post-merge state.
  virtual void on_deliver(core::NodeId at, core::NodeId origin,
                          std::uint64_t origin_seq, const core::Timestamp& ts,
                          const typename App::State& state, sim::Time now) = 0;

  /// A serializable submission reserved `reserved_ts` at node `at` (its
  /// decision will run later, once promises cover the position).
  virtual void on_reserve(core::NodeId at,
                          const core::Timestamp& reserved_ts) = 0;

  /// Node `at` crashed; its pending reservations died with it.
  virtual void on_crash(core::NodeId at, sim::Time now) = 0;

  /// Node `at` restarted. Fires AFTER the node's log has been reset
  /// (amnesia) or truncated (stale disk) but BEFORE the broadcast layer's
  /// restart — whose outbox replay re-delivers through on_deliver, so the
  /// observer's per-node mirror must rewind first. `keep_n` is the number
  /// of log entries that survived (0 under amnesia, the full size under
  /// durable recovery).
  virtual void on_restart(core::NodeId at, sim::RecoveryMode mode,
                          std::size_t keep_n, sim::Time now) = 0;

  /// Fold observer counters/histograms into a metrics snapshot
  /// (Cluster::metrics calls this when an observer is attached).
  virtual void export_metrics(obs::MetricsRegistry&) const {}
};

}  // namespace shard
