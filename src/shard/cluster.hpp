// A simulated SHARD cluster: nodes + network + workload injection + trace
// assembly.
//
// The cluster is the "system" of paper section 3: it runs transactions and
// guarantees the prefix subsequence condition by construction. After a run,
// `execution()` assembles the formal Execution object (serial order = global
// timestamp order; per-transaction prefix subsequence = what the origin had
// merged at decision time), which the analysis passes then check against
// the paper's conditions and theorems.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/execution.hpp"
#include "net/broadcast.hpp"
#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/flame.hpp"
#include "obs/lifecycle.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/sharded_tracer.hpp"
#include "obs/tracer.hpp"
#include "runtime/hooks.hpp"
#include "runtime/sim_backend.hpp"
#include "shard/node.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace shard {

/// Cluster configuration. Deliberately App- and layout-independent (a plain
/// struct, not a nested template member): one config value constructs a
/// Cluster of any application and either log layout, so the differential
/// and ablation harnesses (SoA vs AoS) drive byte-identical setups.
struct ClusterConfig {
  std::size_t num_nodes = 3;
  sim::Network::Config network;
  net::BroadcastOptions broadcast;
  std::size_t checkpoint_interval = 32;
  /// Bound on state snapshots per node: above it, UpdateLog thins
  /// checkpoints geometrically (dense near the tail, sparse near the
  /// base) so memory is O(log n) snapshots. 0 keeps every snapshot.
  std::size_t max_checkpoints = 0;
  /// Discard obsolete information ([SL]): fold cluster-stable log
  /// prefixes into the base state.
  bool compaction = false;
  /// Fault injection, expressed as one composable plan (sim/fault_plan.hpp):
  /// crash/restart windows (durable, amnesia, or stale-disk recovery),
  /// partition cuts (folded into the network schedule at construction),
  /// correlated rack power losses, rolling restarts, and mid-broadcast
  /// crashes at the write-ahead intention-log boundary. The network
  /// refuses delivery to down nodes; submissions reaching them are
  /// rejected and counted, never silently executed.
  sim::FaultPlan faults;
  /// Structured event tracing (obs/). Off by default: every component
  /// keeps a null tracer pointer and pays one branch per would-be event.
  /// On: events flow into the tracer ring + sinks, and a LifecycleTracker
  /// derives replication-latency/undo-churn/divergence metrics. Tracing
  /// never perturbs the protocol (no RNG draws; the extra partition
  /// open/heal marker events are scheduler no-ops).
  obs::TraceOptions trace;
  /// Per-epoch metrics time-series: snapshot the registry at every fault
  /// boundary (cut open/heal, crash/restart — exactly the control events
  /// EpochIndex segments the run by), so metrics_series() can report what
  /// accrued WITHIN each failure regime instead of one end-of-run total.
  /// Off by default: each boundary snapshot walks every exporter.
  bool metrics_series = false;
  std::uint64_t seed = 1;
};

/// One point of the metrics time-series (Cluster::metrics_series): the
/// registry delta that accrued over the interval ENDING at `time`, i.e.
/// since the previous sample (or since construction for the first).
struct MetricsSample {
  double time = 0.0;
  obs::MetricsRegistry metrics;
};

template <core::Application App, LogLayout Layout = LogLayout::kSoA>
class Cluster {
 public:
  using NodeT = Node<App, Layout>;
  using Request = typename App::Request;
  using Config = ClusterConfig;

  explicit Cluster(Config config)
      : config_(std::move(config)), master_rng_(config_.seed) {
    // Fold the fault plan's partition cuts into the network's schedule: the
    // plan is the single user-facing fault surface; the network keeps
    // consulting its own config at send time.
    for (const sim::PartitionEvent& ev :
         config_.faults.partitions().events()) {
      config_.network.partitions.add(ev);
    }
    // Same single-surface rule for the Byzantine payload adversary: armed
    // on the plan, executed by each node's broadcast receive path.
    if (config_.faults.byzantine().enabled) {
      config_.broadcast.byzantine = config_.faults.byzantine();
    }
    validate_faults();
    if (config_.trace.enabled) {
      // Sharded (the default): one bounded ring per node plus a control
      // shard, merged on demand; legacy mode keeps the single global ring
      // (the byte-identity differential pins the two against each other).
      if (config_.trace.sharded) {
        sharded_ = std::make_unique<obs::ShardedTracer>(
            config_.num_nodes, config_.trace.ring_capacity);
      } else {
        tracer_ = std::make_unique<obs::Tracer>(config_.trace.ring_capacity);
      }
      lifecycle_ = std::make_unique<obs::LifecycleTracker>(config_.num_nodes);
      trace_source()->add_sink(lifecycle_.get());
    }
    network_ = std::make_unique<sim::Network>(
        scheduler_, config_.network, master_rng_.fork_seed());
    backend_ =
        std::make_unique<runtime::SimBackend>(scheduler_, *network_);
    // All observation flows through the unified runtime::Hooks surface —
    // the backend fans the one registration out to the legacy scheduler
    // and network observers.
    install_hooks();
    if (config_.trace.enabled) {
      // Partition lifecycle markers: cuts are config, not messages, so no
      // component sees them open/heal — mark the boundaries explicitly.
      const auto& cuts = config_.network.partitions.events();
      for (std::size_t k = 0; k < cuts.size(); ++k) {
        scheduler_.schedule_at(cuts[k].start, [this, k] {
          control_tracer()->record(obs::EventType::kPartitionOpen,
                                   scheduler_.now(), obs::kControlNode, 0, 0,
                                   k);
        });
        scheduler_.schedule_at(cuts[k].end, [this, k] {
          control_tracer()->record(obs::EventType::kPartitionHeal,
                                   scheduler_.now(), obs::kControlNode, 0, 0,
                                   k);
        });
      }
    }
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
      nodes_.push_back(std::make_unique<NodeT>(
          static_cast<core::NodeId>(i),
          backend_->executor(static_cast<runtime::NodeId>(i)),
          backend_->transport(), config_.num_nodes, config_.broadcast,
          config_.checkpoint_interval, master_rng_.fork_seed(),
          config_.compaction, node_tracer(static_cast<sim::NodeId>(i)),
          config_.max_checkpoints));
    }
    for (auto& n : nodes_) n->start();
    for (const sim::CrashEvent& ev : config_.faults.crashes().events()) {
      if (ev.node >= nodes_.size()) throw std::out_of_range("crash: no such node");
      scheduler_.schedule_at(ev.start, [this, node = ev.node] {
        nodes_[node]->crash(scheduler_.now());
      });
      // The catch-up target (how much the node must re-merge to count as
      // recovered) is read at restart time, not schedule-construction time.
      scheduler_.schedule_at(ev.end, [this, ev] {
        nodes_[ev.node]->restart(ev.mode, scheduler_.now(), total_originated(),
                                 ev.keep_fraction);
      });
    }
    arm_mid_broadcast_crashes();
    // Last in the constructor so a boundary snapshot scheduled at time T
    // runs after every same-time fault action (crash, restart, cut marker)
    // already scheduled above: the sample closes the interval the boundary
    // ends, with the boundary's own effects on the next interval's side
    // only when they were armed dynamically (mid-broadcast crashes record
    // their own samples from the hook).
    if (config_.metrics_series) arm_metrics_series();
  }

  /// Schedule a request to be submitted at `node` at simulated time `t`.
  /// If the node is crashed at that moment, the submission is rejected and
  /// counted (EngineStats::rejected_submissions) — clients of a down node
  /// observe unavailability, the paper's price for node failure.
  void submit_at(sim::Time t, core::NodeId node, Request request) {
    if (node >= nodes_.size()) throw std::out_of_range("no such node");
    ++scheduled_submissions_;
    scheduler_.schedule_at(t, [this, node, request = std::move(request)] {
      nodes_[node]->try_submit(request, scheduler_.now());
    });
  }

  /// Submit immediately (at current simulated time) — for step-by-step
  /// scripted scenarios and unit tests.
  typename NodeT::Record submit_now(core::NodeId node, Request request) {
    return nodes_.at(node)->submit(request, scheduler_.now());
  }

  /// Mixed-mode extension: schedule a SERIALIZABLE submission — the node
  /// reserves a timestamp position and defers the decision until peer
  /// promises guarantee a complete prefix (paper sections 3.3 / 6).
  void submit_serializable_at(sim::Time t, core::NodeId node,
                              Request request) {
    if (node >= nodes_.size()) throw std::out_of_range("no such node");
    scheduler_.schedule_at(t, [this, node, request = std::move(request)] {
      nodes_[node]->submit_serializable(request, scheduler_.now());
    });
  }

  /// Serializable submissions still waiting, cluster-wide.
  std::size_t pending_serializable() const {
    std::size_t n = 0;
    for (const auto& node : nodes_) n += node->pending_serializable();
    return n;
  }

  /// Advance simulated time, executing all events up to `t`.
  void run_until(sim::Time t) { scheduler_.run_until(t); }

  /// Run past the end of the partition and crash schedules plus enough
  /// anti-entropy rounds for every node to learn every update. Throws if
  /// convergence is not reached within `max_time` (which would indicate a
  /// protocol bug, a permanent partition, or a never-restarted node).
  void settle(sim::Time max_time = 1e6) {
    // Mid-broadcast crashes are dynamic (they fire when the broadcast
    // happens, if ever) and so not part of this bound; the convergence loop
    // below steps past their restarts.
    const sim::Time heal =
        std::max(config_.network.partitions.last_heal_time(),
                 config_.faults.last_restart_time());
    if (scheduler_.now() < heal) run_until(heal);
    const sim::Time step =
        config_.broadcast.anti_entropy_interval > 0.0
            ? 4.0 * config_.broadcast.anti_entropy_interval
            : 1.0;
    while (!converged() || pending_serializable() > 0) {
      if (scheduler_.now() > max_time) {
        throw std::runtime_error("cluster failed to converge by max_time");
      }
      run_until(scheduler_.now() + step);
    }
  }

  /// Every node knows every update (and therefore, by the merge invariant,
  /// every replica state is identical) — the paper's mutual consistency.
  bool converged() const {
    const std::uint64_t total = total_originated();
    for (const auto& n : nodes_) {
      if (n->updates_known() != total) return false;
    }
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (!(nodes_[i]->state() == nodes_[0]->state())) return false;
    }
    return true;
  }

  std::uint64_t total_originated() const {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) total += n->originated().size();
    return total;
  }

  /// Maps (origin, 1-based broadcast seq) to that broadcast's timestamp:
  /// origin o's seq-th broadcast is its (seq-1)-th originated record. This
  /// is the lazy half of prefix interning — Records carry O(#nodes)
  /// references (core::PrefixRef); only the analysis layer, through this
  /// resolver, ever materializes the O(history) timestamp sets.
  core::PrefixRef::Resolver prefix_resolver() const {
    return [this](core::NodeId origin, std::uint64_t origin_seq) {
      return nodes_.at(origin)->originated().at(origin_seq - 1).ts;
    };
  }

  /// Assemble the formal execution: all transactions from all origins in
  /// global timestamp order, interned prefixes expanded (via
  /// prefix_resolver) and mapped from timestamps to indices.
  core::Execution<App> execution() const {
    // Collect (timestamp -> record) across nodes; std::map orders by ts.
    std::map<core::Timestamp, const typename NodeT::Record*> by_ts;
    for (const auto& n : nodes_) {
      for (const auto& rec : n->originated()) {
        by_ts.emplace(rec.ts, &rec);
      }
    }
    std::map<core::Timestamp, std::size_t> index_of;
    std::size_t next = 0;
    for (const auto& [ts, rec] : by_ts) index_of.emplace(ts, next++);

    const core::PrefixRef::Resolver resolve = prefix_resolver();
    core::Execution<App> exec;
    for (const auto& [ts, rec] : by_ts) {
      core::TxInstance<App> tx;
      tx.ts = rec->ts;
      tx.origin = rec->origin;
      tx.real_time = rec->real_time;
      tx.request = rec->request;
      tx.update = rec->update;
      tx.external_actions = rec->external_actions;
      const std::vector<core::Timestamp> pts = rec->prefix.expand(resolve);
      tx.prefix.reserve(pts.size());
      for (const core::Timestamp& p : pts) {
        tx.prefix.push_back(index_of.at(p));
      }
      exec.append(std::move(tx));
    }
    return exec;
  }

  sim::Scheduler& scheduler() { return scheduler_; }
  sim::Network& network() { return *network_; }
  /// The runtime backend the nodes run against (the deterministic one; the
  /// threaded counterpart lives in runtime::RealtimeCluster).
  runtime::SimBackend& backend() { return *backend_; }
  NodeT& node(core::NodeId i) { return *nodes_.at(i); }
  const NodeT& node(core::NodeId i) const { return *nodes_.at(i); }
  std::size_t num_nodes() const { return nodes_.size(); }
  const Config& config() const { return config_; }

  /// Aggregated engine stats across nodes (thrashing / E10 / E18 tables).
  EngineStats aggregate_engine_stats() const {
    EngineStats agg;
    for (const auto& n : nodes_) {
      const EngineStats& s = n->engine_stats();
      agg.decisions_run += s.decisions_run;
      agg.tail_appends += s.tail_appends;
      agg.mid_inserts += s.mid_inserts;
      agg.undone_updates += s.undone_updates;
      agg.redone_updates += s.redone_updates;
      agg.checkpoints_taken += s.checkpoints_taken;
      agg.checkpoints_invalidated += s.checkpoints_invalidated;
      agg.checkpoints_thinned += s.checkpoints_thinned;
      agg.entries_folded += s.entries_folded;
      agg.crashes += s.crashes;
      agg.recoveries += s.recoveries;
      agg.rejected_submissions += s.rejected_submissions;
      agg.catch_up_updates += s.catch_up_updates;
      agg.downtime += s.downtime;
      agg.recovery_lag += s.recovery_lag;
    }
    return agg;
  }

  /// Requests handed to submit_at (accepted or rejected); with the
  /// aggregate rejected_submissions this yields the availability ratio.
  std::uint64_t scheduled_submissions() const { return scheduled_submissions_; }

  /// Attach a streaming observer (analysis::StreamingChecker) to every
  /// node. Call before injecting traffic; nullptr detaches. The observer
  /// must outlive the cluster or be detached first.
  void set_stream_observer(StreamObserver<App>* obs) {
    stream_obs_ = obs;
    // The typed observer rides the unified hook object (type-erased); the
    // cluster is the consumer that casts it back and attaches it per node.
    hooks_.stream_observer = obs;
    backend_->set_hooks(hooks_);
    for (auto& n : nodes_) n->set_stream_observer(obs);
  }

  /// Read-side view of the execution trace (single ring or per-node shards,
  /// per Config::trace.sharded), or nullptr when tracing is off. Recording
  /// components do not go through this — each holds its concrete Tracer
  /// (its own shard, in sharded mode).
  obs::TraceSource* tracer() {
    return sharded_ ? static_cast<obs::TraceSource*>(sharded_.get())
                    : static_cast<obs::TraceSource*>(tracer_.get());
  }
  const obs::TraceSource* tracer() const {
    return sharded_ ? static_cast<const obs::TraceSource*>(sharded_.get())
                    : static_cast<const obs::TraceSource*>(tracer_.get());
  }
  /// The per-node trace shards, or nullptr in legacy/untraced mode.
  obs::ShardedTracer* sharded_tracer() { return sharded_.get(); }
  /// Trace-derived per-update lifecycle metrics (nullptr when not tracing).
  const obs::LifecycleTracker* lifecycle() const { return lifecycle_.get(); }

  /// One unified snapshot: engine + broadcast + network counters, cluster
  /// workload/availability numbers, and (when tracing) tracer totals and
  /// the derived lifecycle histograms. Serializable via
  /// MetricsRegistry::to_json and comparable across runs.
  obs::MetricsRegistry metrics() const {
    obs::MetricsRegistry reg = base_metrics();
    if (const obs::TraceSource* ts = tracer()) {
      namespace mn = obs::metric_names;
      // Epoch-aware latency attribution over the retained stream: segment
      // by failure regime, fold every causal chain into stage timings.
      // Derivation only — same inputs, same numbers. Deliberately not part
      // of base_metrics(): the boundary snapshots of the metrics series
      // would otherwise rebuild graph+flame mid-run at every fault event.
      const std::vector<obs::Event> ring = ts->ring();
      const obs::EpochIndex epochs = obs::EpochIndex::build(ring);
      const obs::CausalGraph graph = obs::CausalGraph::build(ring);
      const obs::FlameProfile flame =
          obs::FlameProfile::build(ring, graph, epochs);
      reg.add_counter(mn::kEpochCount, epochs.size());
      reg.add_counter(mn::kEpochTransitions, epochs.transitions());
      reg.add_counter(mn::kEpochCoalesced, epochs.coalesced());
      std::uint64_t updates = 0, incomplete = 0;
      std::int64_t crit_total = 0, crit_max = 0;
      double quiet_s = 0.0, degraded_s = 0.0;
      std::map<std::string, std::uint64_t> dominant;
      for (const obs::EpochProfile& ep : flame.epochs()) {
        updates += ep.updates;
        incomplete += ep.incomplete;
        crit_total += ep.critical_total_us;
        crit_max = std::max(crit_max, ep.critical_max_us);
        (epochs.epoch(ep.epoch).quiet() ? quiet_s : degraded_s) +=
            ep.end - ep.start;
        for (const auto& [stage, n] : ep.dominant_counts) dominant[stage] += n;
      }
      reg.add_counter(mn::kEpochUpdatesProfiled, updates);
      reg.add_counter(mn::kEpochUpdatesIncomplete, incomplete);
      reg.add_counter(mn::kEpochCriticalPathUsTotal,
                      static_cast<std::uint64_t>(crit_total));
      reg.add_counter(mn::kEpochCriticalPathUsMax,
                      static_cast<std::uint64_t>(crit_max));
      for (const auto& [stage, n] : dominant) {
        reg.add_counter(mn::kEpochDominantPrefix + stage, n);
      }
      reg.set_gauge(mn::kEpochQuietSeconds, quiet_s);
      reg.set_gauge(mn::kEpochDegradedSeconds, degraded_s);
      obs::Histogram& crit = reg.histogram(mn::kEpochCriticalPathSeconds);
      for (const obs::UpdateTiming& ut : flame.timings()) {
        if (ut.complete) crit.add(static_cast<double>(ut.critical_us()) / 1e6);
      }
    }
    return reg;
  }

  /// The metrics time-series (requires Config::metrics_series): one sample
  /// per fault-plan boundary that fired before now, each holding the
  /// registry DELTA accrued since the previous sample, plus a final sample
  /// at the current simulated time covering the tail. Gauges are
  /// point-in-time values, not deltas (MetricsRegistry::delta_from).
  /// Samples cover base_metrics() — the epoch/flame derivation only makes
  /// sense over the whole retained stream and stays in metrics().
  std::vector<MetricsSample> metrics_series() const {
    std::vector<MetricsSample> out;
    const obs::MetricsRegistry* prev = nullptr;
    for (const auto& s : series_) {
      MetricsSample d;
      d.time = s.time;
      d.metrics = prev ? s.metrics.delta_from(*prev)
                       : s.metrics.delta_from(obs::MetricsRegistry{});
      prev = &s.metrics;
      out.push_back(std::move(d));
    }
    if (series_.empty() || series_.back().time < scheduler_.now()) {
      MetricsSample tail;
      tail.time = scheduler_.now();
      const obs::MetricsRegistry cum = base_metrics();
      tail.metrics =
          prev ? cum.delta_from(*prev) : cum.delta_from(obs::MetricsRegistry{});
      out.push_back(std::move(tail));
    }
    return out;
  }

 private:
  /// Everything in metrics() except the epoch/flame derivation: cheap
  /// enough to snapshot at every fault boundary for the metrics series.
  obs::MetricsRegistry base_metrics() const {
    obs::MetricsRegistry reg;
    aggregate_engine_stats().export_to(reg, "engine");
    for (const auto& n : nodes_) {
      n->broadcast_stats().export_to(reg);
    }
    const sim::NetworkStats& ns = network_->stats();
    reg.add_counter("net.sent", ns.sent);
    reg.add_counter("net.delivered", ns.delivered);
    reg.add_counter("net.dropped_partition", ns.dropped_partition);
    reg.add_counter("net.dropped_random", ns.dropped_random);
    reg.add_counter("net.dropped_crashed", ns.dropped_crashed);
    reg.add_counter("cluster.nodes", nodes_.size());
    reg.add_counter("cluster.scheduled_submissions", scheduled_submissions_);
    reg.add_counter("cluster.updates_originated", total_originated());
    reg.set_gauge("cluster.sim_time", scheduler_.now());
    // Retention footprint (the E20 O(window)-vs-O(history) proxies): log
    // entries and state snapshots at the engine, wire messages in the
    // repair stores, and prefix slots across all originated records.
    std::size_t entries = 0, checkpoints = 0, store = 0, slots = 0;
    for (const auto& n : nodes_) {
      entries += n->entries_retained();
      checkpoints += n->checkpoints_retained();
      store += n->repair_store_retained();
      slots += n->prefix_slots_retained();
    }
    reg.add_counter("retained.log_entries", entries);
    reg.add_counter("retained.checkpoints", checkpoints);
    reg.add_counter("retained.repair_store", store);
    reg.add_counter("retained.prefix_slots", slots);
    if (const obs::TraceSource* ts = tracer()) {
      reg.add_counter("trace.events_recorded", ts->recorded());
      reg.add_counter("trace.events_evicted", ts->evicted());
    }
    if (lifecycle_) lifecycle_->export_to(reg);
    if (stream_obs_) stream_obs_->export_metrics(reg);
    return reg;
  }

  /// Schedule one cumulative-snapshot sample per distinct fault-plan
  /// boundary time: cut opens/heals and crash starts/restarts — the static
  /// schedule EpochIndex derives its epochs from. Mid-broadcast crashes
  /// are dynamic and record their samples from the hook instead.
  void arm_metrics_series() {
    std::vector<sim::Time> at;
    for (const sim::PartitionEvent& ev :
         config_.network.partitions.events()) {
      at.push_back(ev.start);
      at.push_back(ev.end);
    }
    for (const sim::CrashEvent& ev : config_.faults.crashes().events()) {
      at.push_back(ev.start);
      at.push_back(ev.end);
    }
    std::sort(at.begin(), at.end());
    at.erase(std::unique(at.begin(), at.end()), at.end());
    for (const sim::Time t : at) {
      scheduler_.schedule_at(t, [this] { record_metrics_sample(); });
    }
  }

  /// Append one cumulative snapshot at the current simulated time (at most
  /// one per instant — a dynamic boundary can coincide with a static one).
  void record_metrics_sample() {
    if (!series_.empty() && series_.back().time == scheduler_.now()) {
      series_.back().metrics = base_metrics();
      return;
    }
    MetricsSample s;
    s.time = scheduler_.now();
    s.metrics = base_metrics();
    series_.push_back(std::move(s));
  }

  /// Build the unified hook set and hand it to the backend. Dispatch events
  /// from the simulator arrive attributed to kNoWorker and are routed to
  /// the control shard exactly as the legacy scheduler observer did; a
  /// per-node worker id (threaded backend) would route to that node's
  /// shard. Fates split send-side/delivery-side between src and dst tracks.
  void install_hooks() {
    if (config_.trace.enabled) {
      hooks_.on_dispatch = [this](runtime::NodeId worker, sim::Time t,
                                  std::uint64_t id) {
        const bool control = worker == runtime::kNoWorker;
        (control ? control_tracer() : node_tracer(worker))
            ->record(obs::EventType::kSchedulerDispatch, t,
                     control ? obs::kControlNode : worker, 0, 0, id);
      };
      hooks_.on_message_fate = [this](sim::NodeId src, sim::NodeId dst,
                                      std::uint64_t id,
                                      runtime::MessageFate fate) {
        // Send-side fates belong to the source's program order; delivery
        // and delivery-time crash drops (id != 0: the message travelled)
        // belong to the destination's — so the causal graph threads each
        // node's track through the deliveries it actually observed.
        const obs::EventType type = fate_event_type(fate);
        const bool at_dst =
            type == obs::EventType::kNetDeliver ||
            (type == obs::EventType::kNetDropCrashed && id != 0);
        node_tracer(at_dst ? dst : src)
            ->record(type, scheduler_.now(), at_dst ? dst : src, 0, 0,
                     at_dst ? src : dst, id);
      };
    }
    hooks_.stream_observer = stream_obs_;
    backend_->set_hooks(hooks_);
  }

  /// The concrete tracer a component at `node` records into: its own shard
  /// in sharded mode, the global ring in legacy mode, nullptr when off.
  obs::Tracer* node_tracer(sim::NodeId node) {
    return sharded_ ? &sharded_->shard(node) : tracer_.get();
  }
  /// Where cluster-scope events (scheduler dispatch, cut markers) go.
  obs::Tracer* control_tracer() {
    return sharded_ ? &sharded_->control_shard() : tracer_.get();
  }
  obs::TraceSource* trace_source() { return tracer(); }

  /// Reject fault/config combinations that would break recovery, up front
  /// rather than asserting deep inside the broadcast layer:
  ///  * repair-store pruning discards wire messages every peer acknowledged,
  ///    but amnesia and stale-disk recovery rely on peers retaining
  ///    everything a rewound node may re-request;
  ///  * stale-disk recovery rewinds to a timestamp-prefix of the merged
  ///    log, which induces contiguous per-origin delivered counts only
  ///    under causal delivery.
  void validate_faults() const {
    const bool prune = config_.broadcast.prune_repair_store;
    const bool causal = config_.broadcast.causal;
    const auto check = [&](sim::RecoveryMode mode) {
      if (prune && mode == sim::RecoveryMode::kAmnesia) {
        throw std::invalid_argument(
            "prune_repair_store is incompatible with amnesia recovery");
      }
      if (prune && mode == sim::RecoveryMode::kStaleDisk) {
        throw std::invalid_argument(
            "prune_repair_store is incompatible with stale-disk recovery");
      }
      if (!causal && mode == sim::RecoveryMode::kStaleDisk) {
        throw std::invalid_argument(
            "stale-disk recovery requires causal broadcast");
      }
    };
    for (const sim::CrashEvent& ev : config_.faults.crashes().events()) {
      check(ev.mode);
    }
    for (const sim::MidBroadcastCrash& mb :
         config_.faults.mid_broadcast_crashes()) {
      if (mb.node >= config_.num_nodes) {
        throw std::out_of_range("mid-broadcast crash: no such node");
      }
      check(mb.mode);
    }
  }

  /// Arm each node's broadcast-layer probe for the plan's mid-broadcast
  /// crashes: when the node's origin seq matches an armed event, the node
  /// crashes between the stable-outbox append and the first flood send and
  /// a restart is scheduled `down_for` later.
  void arm_mid_broadcast_crashes() {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      std::map<std::uint64_t, sim::MidBroadcastCrash> armed;
      for (const sim::MidBroadcastCrash& mb :
           config_.faults.mid_broadcast_crashes()) {
        if (mb.node == n) armed.emplace(mb.broadcast_seq, mb);
      }
      if (armed.empty()) continue;
      nodes_[n]->set_mid_broadcast_crash_hook(
          [this, n, armed = std::move(armed)](std::uint64_t seq) {
            const auto it = armed.find(seq);
            if (it == armed.end()) return false;
            const sim::MidBroadcastCrash mb = it->second;
            const sim::Time now = scheduler_.now();
            nodes_[n]->crash(now);
            if (config_.metrics_series) record_metrics_sample();
            scheduler_.schedule_at(now + mb.down_for, [this, n, mb] {
              nodes_[n]->restart(mb.mode, scheduler_.now(),
                                 total_originated(), mb.keep_fraction);
              if (config_.metrics_series) record_metrics_sample();
            });
            return true;
          });
    }
  }

  static obs::EventType fate_event_type(sim::Network::MessageFate fate) {
    switch (fate) {
      case sim::Network::MessageFate::kSent:
        return obs::EventType::kNetSend;
      case sim::Network::MessageFate::kDelivered:
        return obs::EventType::kNetDeliver;
      case sim::Network::MessageFate::kDroppedPartition:
        return obs::EventType::kNetDropPartition;
      case sim::Network::MessageFate::kDroppedRandom:
        return obs::EventType::kNetDropRandom;
      case sim::Network::MessageFate::kDroppedCrashed:
        return obs::EventType::kNetDropCrashed;
    }
    return obs::EventType::kNetSend;  // unreachable
  }

  Config config_;
  sim::Rng master_rng_;
  sim::Scheduler scheduler_;
  // Tracing sits above the nodes (they hold raw pointers into it) and is
  // declared before them so it outlives their destructors. Exactly one of
  // tracer_ / sharded_ is set when tracing is enabled (trace.sharded picks).
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::ShardedTracer> sharded_;
  std::unique_ptr<obs::LifecycleTracker> lifecycle_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<runtime::SimBackend> backend_;
  /// The one registration object for all observation (dispatch, message
  /// fates, typed stream observer) — re-installed whenever it changes.
  runtime::Hooks hooks_;
  std::vector<std::unique_ptr<NodeT>> nodes_;
  StreamObserver<App>* stream_obs_ = nullptr;
  std::uint64_t scheduled_submissions_ = 0;
  /// Cumulative boundary snapshots (Config::metrics_series); converted to
  /// per-interval deltas by metrics_series().
  std::vector<MetricsSample> series_;
};

}  // namespace shard
