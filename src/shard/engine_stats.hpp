// Counters for the replica engine's undo/redo machinery (non-template part).
#pragma once

#include <cstdint>
#include <string>

namespace obs {
class MetricsRegistry;
}

namespace shard {

/// Observability for one node's merge engine. The thrashing experiment (E8),
/// the checkpoint-optimization microbench (E10), and the crash/recovery
/// experiment (E18) read these.
struct EngineStats {
  std::uint64_t decisions_run = 0;   ///< Decision parts executed locally.
  std::uint64_t tail_appends = 0;    ///< Updates merged at the log tail.
  std::uint64_t mid_inserts = 0;     ///< Updates merged out of order.
  std::uint64_t undone_updates = 0;  ///< Updates rolled back by mid-inserts.
  std::uint64_t redone_updates = 0;  ///< Updates re-applied (incl. replays
                                     ///< from checkpoints).
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoints_invalidated = 0;
  std::uint64_t checkpoints_thinned = 0;  ///< Snapshots dropped by the
                                          ///< geometric max_checkpoints bound
                                          ///< (UpdateLog), not by mid-inserts.
  std::uint64_t entries_folded = 0;  ///< Compaction ([SL]): discarded entries.

  // Crash/recovery (E18). A submission reaching a down node is *rejected*,
  // never silently executed; recovery lag is the time from a restart until
  // the node has re-merged every update the cluster had originated by that
  // restart; catch-up updates are the merges performed in that window.
  std::uint64_t crashes = 0;               ///< crash() transitions.
  std::uint64_t recoveries = 0;            ///< restart() transitions.
  std::uint64_t rejected_submissions = 0;  ///< Submissions refused while down
                                           ///< (incl. reservations dropped by
                                           ///< a crash).
  std::uint64_t catch_up_updates = 0;      ///< Updates merged while catching
                                           ///< up after a restart.
  double downtime = 0.0;      ///< Total simulated time spent crashed.
  double recovery_lag = 0.0;  ///< Total restart -> caught-up time.

  std::string summary() const;

  /// Fold every field into `reg` under "<prefix>.<field>" (counters add,
  /// so calling once per node aggregates; the two durations land as
  /// gauges, which overwrite — export aggregated stats for those).
  void export_to(obs::MetricsRegistry& reg,
                 const std::string& prefix = "engine") const;
};

}  // namespace shard
