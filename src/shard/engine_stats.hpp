// Counters for the replica engine's undo/redo machinery (non-template part).
#pragma once

#include <cstdint>
#include <string>

namespace shard {

/// Observability for one node's merge engine. The thrashing experiment (E8)
/// and the checkpoint-optimization microbench (E10) read these.
struct EngineStats {
  std::uint64_t decisions_run = 0;   ///< Decision parts executed locally.
  std::uint64_t tail_appends = 0;    ///< Updates merged at the log tail.
  std::uint64_t mid_inserts = 0;     ///< Updates merged out of order.
  std::uint64_t undone_updates = 0;  ///< Updates rolled back by mid-inserts.
  std::uint64_t redone_updates = 0;  ///< Updates re-applied (incl. replays
                                     ///< from checkpoints).
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoints_invalidated = 0;
  std::uint64_t entries_folded = 0;  ///< Compaction ([SL]): discarded entries.

  std::string summary() const;
};

}  // namespace shard
