// Partial replication (the paper's first section 6 extension).
//
// "The inessential full replication assumption needs to be removed. Even
// with only partial replication, it should be possible to continue to
// maintain the correctness conditions we describe in this paper, by
// judicious assignment of data and transactions to nodes (i.e. in such a
// way that each transaction will have copies of all the data it requires)."
//
// Model: the database is partitioned into *groups* of objects (accounts,
// key shards, flights); each group is replicated on `replication_factor`
// of the nodes. A request names the group(s) it reads and writes; the
// router sends it to a node hosting ALL of them — the paper's "judicious
// assignment". The decision part reads the local replicas of those groups
// and emits one update per written group; each group's updates are
// broadcast only to that group's replica set and merged in global
// timestamp order per group. Every per-group projection of the run is a
// SHARD execution in the full paper sense, so all the correctness
// conditions apply group-wise (checked in tests/test_partial.cpp).
//
// What partial replication costs, and what the experiments measure
// (bench/e13_partial_replication): a request whose group set no single
// node hosts is *unroutable* (a new failure mode full replication never
// has), and smaller replica sets mean less storage and fewer messages but
// fewer places any given transaction can run.
#pragma once

#include <algorithm>
#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/execution.hpp"
#include "core/model.hpp"
#include "core/timestamp.hpp"
#include "shard/engine_stats.hpp"
#include "shard/update_log.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace shard {

using GroupId = std::uint32_t;

/// One group-scoped write produced by a decision.
template <class A>
struct GroupWrite {
  GroupId group = 0;
  typename A::Update update;
};

/// What a partial-application decision returns.
template <class A>
struct PartialDecision {
  std::vector<GroupWrite<A>> writes;
  std::vector<core::ExternalAction> external_actions;
};

/// Read access to the local replicas of the groups a request declared.
template <class A>
using GroupView =
    std::function<const typename A::GroupState&(GroupId)>;

/// Contract for partially replicated applications.
///
/// Requirements beyond the syntactic ones:
///  - `groups_of(request)` must list every group the decision reads or the
///    updates write (the router relies on it);
///  - `decide` must only call the view on those groups;
///  - each write's group must be in `groups_of(request)`;
///  - `apply` must preserve group well-formedness.
template <class A>
concept PartialApplication =
    requires(const typename A::GroupState& gs,
             typename A::GroupState& mutable_gs,
             const typename A::Update& u, const typename A::Request& req,
             const GroupView<A>& view) {
      typename A::GroupState;
      typename A::Update;
      typename A::Request;
      { A::name() } -> std::convertible_to<std::string>;
      { A::group_initial() } -> std::same_as<typename A::GroupState>;
      { A::group_well_formed(gs) } -> std::convertible_to<bool>;
      { A::apply(u, mutable_gs) } -> std::same_as<void>;
      { A::groups_of(req) } -> std::convertible_to<std::vector<GroupId>>;
      { A::decide(req, view) } -> std::same_as<PartialDecision<A>>;
      { A::kNumConstraints } -> std::convertible_to<int>;
      { A::cost(gs, int{}) } -> std::convertible_to<double>;
      requires std::equality_comparable<typename A::GroupState>;
      requires std::default_initializable<typename A::Update>;
    };

/// Adapter exposing one group of a PartialApplication as a Replicable
/// state machine, so UpdateLog and Execution can be reused verbatim.
template <PartialApplication A>
struct GroupStateMachine {
  using State = typename A::GroupState;
  using Update = typename A::Update;
  using Request = typename A::Request;
  static State initial() { return A::group_initial(); }
  static bool well_formed(const State& s) { return A::group_well_formed(s); }
  static void apply(const Update& u, State& s) { A::apply(u, s); }
};

/// A partially replicated SHARD cluster.
template <PartialApplication A>
class PartialCluster {
 public:
  using GroupLog = UpdateLog<GroupStateMachine<A>>;
  using Request = typename A::Request;
  using Update = typename A::Update;

  struct Config {
    std::size_t num_nodes = 4;
    std::size_t num_groups = 8;
    std::size_t replication_factor = 2;
    sim::Network::Config network;
    sim::Time anti_entropy_interval = 0.5;
    std::size_t checkpoint_interval = 32;
    std::uint64_t seed = 1;
  };

  /// What the origin records about one transaction (for per-group
  /// execution assembly).
  struct Record {
    core::Timestamp ts;
    core::NodeId origin = 0;
    sim::Time real_time = 0.0;
    Request request;
    std::vector<GroupWrite<A>> writes;
    std::vector<core::ExternalAction> external_actions;
    /// Per written group: the timestamps merged in that group's local log
    /// at decision time — the group-wise prefix subsequence.
    std::map<GroupId, std::vector<core::Timestamp>> group_prefixes;
  };

  struct Stats {
    std::uint64_t routed = 0;
    std::uint64_t unroutable = 0;  ///< no node hosts all required groups
    std::uint64_t wires_sent = 0;
    std::uint64_t repairs_sent = 0;
  };

  explicit PartialCluster(Config config)
      : config_(config), rng_(config.seed) {
    if (config_.replication_factor == 0 ||
        config_.replication_factor > config_.num_nodes) {
      throw std::invalid_argument("replication factor out of range");
    }
    network_ = std::make_unique<sim::Network>(scheduler_, config_.network,
                                              rng_.fork_seed());
    // Placement: group g lives on r consecutive nodes starting at g mod n.
    replicas_.resize(config_.num_groups);
    for (GroupId g = 0; g < config_.num_groups; ++g) {
      for (std::size_t j = 0; j < config_.replication_factor; ++j) {
        replicas_[g].push_back(static_cast<core::NodeId>(
            (g + j) % config_.num_nodes));
      }
    }
    nodes_.resize(config_.num_nodes);
    for (core::NodeId n = 0; n < config_.num_nodes; ++n) {
      nodes_[n] = std::make_unique<NodeState>(n, config_.checkpoint_interval);
      network_->register_node(
          n, [this, n](const sim::Message& m) { on_message(n, m); });
    }
    for (GroupId g = 0; g < config_.num_groups; ++g) {
      for (core::NodeId n : replicas_[g]) {
        nodes_[n]->logs.emplace(g, GroupLog(config_.checkpoint_interval));
      }
    }
    if (config_.anti_entropy_interval > 0.0) {
      for (core::NodeId n = 0; n < config_.num_nodes; ++n) {
        schedule_anti_entropy(n);
      }
    }
  }

  /// Nodes hosting group g.
  const std::vector<core::NodeId>& replicas_of(GroupId g) const {
    return replicas_.at(g);
  }

  bool hosts(core::NodeId n, GroupId g) const {
    return nodes_.at(n)->logs.contains(g);
  }

  /// A node hosting every group in `groups`, or nullopt — the "judicious
  /// assignment" requirement that each transaction has copies of all the
  /// data it requires.
  std::optional<core::NodeId> route(const std::vector<GroupId>& groups) {
    std::vector<core::NodeId> candidates;
    for (core::NodeId n = 0; n < config_.num_nodes; ++n) {
      bool all = true;
      for (GroupId g : groups) {
        if (!hosts(n, g)) {
          all = false;
          break;
        }
      }
      if (all) candidates.push_back(n);
    }
    if (candidates.empty()) return std::nullopt;
    return candidates[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1))];
  }

  /// Schedule a submission; routing happens at fire time. Returns nothing —
  /// unroutable requests are counted in stats().
  void submit_at(sim::Time t, Request request) {
    scheduler_.schedule_at(t, [this, request = std::move(request)] {
      const std::vector<GroupId> groups = A::groups_of(request);
      const auto node = route(groups);
      if (!node.has_value()) {
        ++stats_.unroutable;
        return;
      }
      run_at(*node, request, scheduler_.now());
    });
  }

  /// Run a request at a specific hosting node, now (tests / scripting).
  Record submit_now_at(core::NodeId node, const Request& request) {
    return run_at(node, request, scheduler_.now());
  }

  void run_until(sim::Time t) { scheduler_.run_until(t); }

  /// Drive anti-entropy past the last partition heal until every group's
  /// replicas agree.
  void settle(sim::Time max_time = 1e6) {
    const sim::Time heal = config_.network.partitions.last_heal_time();
    if (scheduler_.now() < heal) run_until(heal);
    const sim::Time step = config_.anti_entropy_interval > 0.0
                               ? 4.0 * config_.anti_entropy_interval
                               : 1.0;
    while (!converged()) {
      if (scheduler_.now() > max_time) {
        throw std::runtime_error("partial cluster failed to converge");
      }
      run_until(scheduler_.now() + step);
    }
  }

  /// Mutual consistency per group: every replica holds EVERY update ever
  /// written to the group (size compared against the global write count —
  /// two replicas can transiently have equal sizes and states with
  /// different contents) and the states agree.
  bool converged() const {
    std::vector<std::size_t> expected(config_.num_groups, 0);
    for (const auto& node : nodes_) {
      for (const auto& rec : node->originated) {
        for (const auto& w : rec.writes) ++expected[w.group];
      }
    }
    for (GroupId g = 0; g < config_.num_groups; ++g) {
      const auto& reps = replicas_[g];
      const GroupLog& first = nodes_[reps.front()]->logs.at(g);
      if (first.size() != expected[g]) return false;
      for (std::size_t i = 1; i < reps.size(); ++i) {
        const GroupLog& other = nodes_[reps[i]]->logs.at(g);
        if (other.size() != expected[g] ||
            !(other.state() == first.state())) {
          return false;
        }
      }
    }
    return true;
  }

  /// The state of group g (at its first replica).
  const typename A::GroupState& group_state(GroupId g) const {
    return nodes_[replicas_.at(g).front()]->logs.at(g).state();
  }

  /// Assemble the formal execution of one group: all transactions that
  /// wrote it, in timestamp order, with group-wise prefix subsequences.
  core::Execution<GroupStateMachine<A>> group_execution(GroupId g) const {
    struct Item {
      const Record* rec;
      const GroupWrite<A>* write;
    };
    std::map<core::Timestamp, Item> by_ts;
    for (const auto& node : nodes_) {
      for (const auto& rec : node->originated) {
        for (const auto& w : rec.writes) {
          if (w.group == g) by_ts.emplace(rec.ts, Item{&rec, &w});
        }
      }
    }
    std::map<core::Timestamp, std::size_t> index_of;
    std::size_t next = 0;
    for (const auto& [ts, item] : by_ts) index_of.emplace(ts, next++);
    core::Execution<GroupStateMachine<A>> exec;
    for (const auto& [ts, item] : by_ts) {
      core::TxInstance<GroupStateMachine<A>> tx;
      tx.ts = ts;
      tx.origin = item.rec->origin;
      tx.real_time = item.rec->real_time;
      tx.request = item.rec->request;
      tx.update = item.write->update;
      tx.external_actions = item.rec->external_actions;
      for (const core::Timestamp& pts :
           item.rec->group_prefixes.at(g)) {
        tx.prefix.push_back(index_of.at(pts));
      }
      exec.append(std::move(tx));
    }
    return exec;
  }

  /// Total log entries stored at a node — the storage saving vs full
  /// replication.
  std::size_t storage_at(core::NodeId n) const {
    std::size_t total = 0;
    for (const auto& [g, log] : nodes_.at(n)->logs) total += log.size();
    return total;
  }

  std::size_t groups_hosted_at(core::NodeId n) const {
    return nodes_.at(n)->logs.size();
  }

  const Stats& stats() const { return stats_; }
  sim::Scheduler& scheduler() { return scheduler_; }
  const Config& config() const { return config_; }
  const std::vector<Record>& originated_at(core::NodeId n) const {
    return nodes_.at(n)->originated;
  }

 private:
  enum class PacketType { kWire, kDigest, kRepair };
  struct Wire {
    GroupId group = 0;
    core::NodeId origin = 0;
    std::uint64_t origin_seq = 0;  // per (origin, group)
    core::Timestamp ts;
    Update update;
  };
  struct Packet {
    PacketType type = PacketType::kWire;
    Wire wire;
    GroupId digest_group = 0;
    std::vector<std::uint64_t> digest_have;  // per origin node
    std::vector<Wire> repairs;
  };

  struct NodeState {
    core::NodeId id;
    core::LamportClock clock;
    std::map<GroupId, GroupLog> logs;
    std::vector<Record> originated;
    /// Per (group, origin): contiguous received prefix + out-of-order
    /// extras, for dedup and anti-entropy digests. Wire sequence numbers
    /// are per (origin, group).
    std::map<GroupId, std::vector<std::uint64_t>> contiguous_have;
    std::map<GroupId, std::vector<std::unordered_set<std::uint64_t>>> extras;
    /// Repair store: every wire received, per group/origin/seq.
    std::map<GroupId, std::map<core::NodeId, std::map<std::uint64_t, Wire>>>
        store_;
    std::map<GroupId, std::uint64_t> own_seq;

    NodeState(core::NodeId n, std::size_t) : id(n), clock(n) {}
  };

  Record run_at(core::NodeId node_id, const Request& request, sim::Time now) {
    NodeState& node = *nodes_[node_id];
    const std::vector<GroupId> groups = A::groups_of(request);
    for (GroupId g : groups) {
      if (!node.logs.contains(g)) {
        throw std::logic_error("routed to a node not hosting a group");
      }
    }
    ++stats_.routed;
    Record rec;
    rec.origin = node_id;
    rec.real_time = now;
    rec.request = request;
    const GroupView<A> view =
        [&node](GroupId g) -> const typename A::GroupState& {
      return node.logs.at(g).state();
    };
    PartialDecision<A> decision = A::decide(request, view);
    rec.external_actions = std::move(decision.external_actions);
    rec.writes = std::move(decision.writes);
    // One timestamp for the whole transaction; per-group logs never see
    // duplicates because a transaction writes each group at most once.
    rec.ts = node.clock.tick();
    for (const auto& w : rec.writes) {
      rec.group_prefixes.emplace(w.group,
                                 node.logs.at(w.group).known_timestamps());
    }
    node.originated.push_back(rec);
    for (const auto& w : rec.writes) {
      Wire wire;
      wire.group = w.group;
      wire.origin = node_id;
      wire.origin_seq = ++node.own_seq[w.group];
      wire.ts = rec.ts;
      wire.update = w.update;
      ingest(node, wire);  // local merge first
      for (core::NodeId peer : replicas_[w.group]) {
        if (peer == node_id) continue;
        Packet p;
        p.type = PacketType::kWire;
        p.wire = wire;
        ++stats_.wires_sent;
        network_->send(node_id, peer, std::any(std::move(p)));
      }
    }
    return rec;
  }

  void on_message(core::NodeId self, const sim::Message& m) {
    NodeState& node = *nodes_[self];
    const auto& p = std::any_cast<const Packet&>(m.payload);
    switch (p.type) {
      case PacketType::kWire:
        ingest(node, p.wire);
        break;
      case PacketType::kDigest:
        answer_digest(self, m.src, p);
        break;
      case PacketType::kRepair:
        for (const Wire& w : p.repairs) ingest(node, w);
        break;
    }
  }

  void ingest(NodeState& node, const Wire& w) {
    auto& have = node.contiguous_have[w.group];
    auto& extra = node.extras[w.group];
    if (have.size() < config_.num_nodes) have.resize(config_.num_nodes, 0);
    if (extra.size() < config_.num_nodes) extra.resize(config_.num_nodes);
    if (w.origin_seq <= have[w.origin] ||
        extra[w.origin].contains(w.origin_seq)) {
      return;  // duplicate
    }
    extra[w.origin].insert(w.origin_seq);
    while (extra[w.origin].contains(have[w.origin] + 1)) {
      ++have[w.origin];
      extra[w.origin].erase(have[w.origin]);
    }
    node.store_[w.group][w.origin][w.origin_seq] = w;
    node.clock.observe(w.ts);
    node.logs.at(w.group).insert({w.ts, w.update});
  }

  void schedule_anti_entropy(core::NodeId n) {
    const sim::Time dt =
        config_.anti_entropy_interval + rng_.uniform(0.0, 0.1);
    scheduler_.schedule_after(dt, [this, n] {
      run_anti_entropy_round(n);
      schedule_anti_entropy(n);
    });
  }

  void run_anti_entropy_round(core::NodeId self) {
    NodeState& node = *nodes_[self];
    // One digest per hosted group, to a random co-replica.
    for (const auto& [g, log] : node.logs) {
      const auto& reps = replicas_[g];
      if (reps.size() < 2) continue;
      core::NodeId peer;
      do {
        peer = reps[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(reps.size()) - 1))];
      } while (peer == self);
      Packet p;
      p.type = PacketType::kDigest;
      p.digest_group = g;
      auto& have = node.contiguous_have[g];
      if (have.size() < config_.num_nodes) have.resize(config_.num_nodes, 0);
      p.digest_have = have;
      network_->send(self, peer, std::any(std::move(p)));
    }
  }

  void answer_digest(core::NodeId self, core::NodeId requester,
                     const Packet& digest) {
    NodeState& node = *nodes_[self];
    const GroupId g = digest.digest_group;
    Packet reply;
    reply.type = PacketType::kRepair;
    auto& have = node.contiguous_have[g];
    if (have.size() < config_.num_nodes) have.resize(config_.num_nodes, 0);
    for (core::NodeId origin = 0; origin < config_.num_nodes; ++origin) {
      const std::uint64_t theirs = origin < digest.digest_have.size()
                                       ? digest.digest_have[origin]
                                       : 0;
      for (std::uint64_t seq = theirs + 1; seq <= have[origin]; ++seq) {
        reply.repairs.push_back(node.store_[g][origin][seq]);
      }
    }
    if (reply.repairs.empty()) return;
    stats_.repairs_sent += reply.repairs.size();
    network_->send(self, requester, std::any(std::move(reply)));
  }

  Config config_;
  sim::Rng rng_;
  sim::Scheduler scheduler_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::vector<core::NodeId>> replicas_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  Stats stats_;
};

}  // namespace shard
