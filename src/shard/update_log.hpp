// Timestamp-ordered update log with undo/redo merging.
//
// Paper section 1.2: "When a node receives new information about a
// transaction, no matter when the transaction was initiated, this
// information must be merged into the node's copy of the database ...
// Because all nodes order the transactions in the same way, they will agree
// on the result of merging identical sets of transactions. Also, at all
// times during execution, each node's copy of the database always reflects
// the effects of all the transactions known to that node, as if they were
// run according to the global timestamp order. Since messages about
// different transactions could arrive at a single node out of timestamp
// order, keeping the copy correct entails frequent undoing and redoing of
// transactions."
//
// This class is that mechanism. The invariant after every insert:
//
//     state() == fold(App::apply, App::initial(), entries sorted by ts)
//
// Out-of-order arrivals trigger an undo/redo: conceptually every update
// after the insertion point is undone and then redone on top of the
// newcomer. Implementing literal inverse updates would require apps to
// supply inverses; instead — like the optimizations of [BK]/[SKS], which
// keep history/checkpoint information to avoid recomputation — we keep
// periodic state checkpoints and replay forward from the nearest checkpoint
// at or before the insertion point. The observable result and the
// undo/redo *counts* (what the thrashing analysis consumes) are identical
// to the literal strategy.
//
// Storage layout (constant factors; DESIGN.md §9): every insert binary-
// searches the timestamp order and a mid-insert shifts the tail, so the
// default layout is struct-of-arrays — a dense contiguous core::Timestamp
// column scanned by the position search, a parallel column of arena slot
// indices, and an arena of Update objects that never move once written
// (mid-inserts shift 16+4 bytes per displaced entry instead of a full
// Entry; freed slots are recycled so compaction keeps the arena O(window)).
// Checkpoint positions index the order columns; because the arena never
// relocates updates, compaction and mid-inserts shift checkpoints without
// touching update storage. The original array-of-structs layout survives as
// LogLayout::kAoS — the differential oracle and the E25 ablation baseline.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/timestamp.hpp"
#include "obs/tracer.hpp"
#include "shard/engine_stats.hpp"

namespace shard {

/// Storage layout of an UpdateLog: kSoA (timestamp column + update arena,
/// the default) or kAoS (one Entry vector — oracle and ablation baseline).
/// Behavior, stats and trace streams are identical; only memory layout and
/// constant factors differ.
enum class LogLayout : std::uint8_t { kSoA, kAoS };

namespace detail {

/// SoA/arena entry storage. The order columns ts_/slot_ are index-aligned;
/// arena_[slot_[i]] is position i's update. Updates never move after being
/// written: inserts shift only the two order columns, erases push the freed
/// slots onto a free list for reuse.
template <class Update>
class SoALogStore {
 public:
  std::size_t size() const { return ts_.size(); }
  const core::Timestamp& ts_at(std::size_t i) const { return ts_[i]; }
  const Update& update_at(std::size_t i) const { return arena_[slot_[i]]; }

  /// First position with timestamp >= ts. The scan touches only the dense
  /// timestamp column — the cache-line argument for this layout.
  std::size_t lower_bound(const core::Timestamp& ts) const {
    return static_cast<std::size_t>(
        std::lower_bound(ts_.begin(), ts_.end(), ts) - ts_.begin());
  }

  void insert(std::size_t pos, const core::Timestamp& ts, Update update) {
    const std::uint32_t slot = allocate(std::move(update));
    ts_.insert(ts_.begin() + static_cast<std::ptrdiff_t>(pos), ts);
    slot_.insert(slot_.begin() + static_cast<std::ptrdiff_t>(pos), slot);
  }

  void erase_prefix(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) free_.push_back(slot_[i]);
    ts_.erase(ts_.begin(), ts_.begin() + static_cast<std::ptrdiff_t>(n));
    slot_.erase(slot_.begin(), slot_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void truncate(std::size_t keep_n) {
    for (std::size_t i = keep_n; i < slot_.size(); ++i) {
      free_.push_back(slot_[i]);
    }
    ts_.resize(keep_n);
    slot_.resize(keep_n);
  }

  void clear() {
    ts_.clear();
    slot_.clear();
    arena_.clear();
    free_.clear();
  }

  std::vector<core::Timestamp> timestamps() const { return ts_; }

  /// Arena observability (tests pin the O(window) reuse claim).
  std::size_t arena_slots() const { return arena_.size(); }
  std::size_t arena_free_slots() const { return free_.size(); }

 private:
  std::uint32_t allocate(Update update) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      arena_[slot] = std::move(update);
      return slot;
    }
    assert(arena_.size() < UINT32_MAX);
    arena_.push_back(std::move(update));
    return static_cast<std::uint32_t>(arena_.size() - 1);
  }

  std::vector<core::Timestamp> ts_;   ///< Dense timestamp column.
  std::vector<std::uint32_t> slot_;   ///< Arena slot per position.
  std::vector<Update> arena_;         ///< Update storage; slots are stable.
  std::vector<std::uint32_t> free_;   ///< Recycled slots (LIFO).
};

/// Array-of-structs entry storage — the original layout, kept as the
/// differential oracle and the E25 ablation baseline.
template <class Update>
class AoSLogStore {
 public:
  std::size_t size() const { return entries_.size(); }
  const core::Timestamp& ts_at(std::size_t i) const { return entries_[i].ts; }
  const Update& update_at(std::size_t i) const { return entries_[i].update; }

  std::size_t lower_bound(const core::Timestamp& ts) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), ts,
        [](const Ent& e, const core::Timestamp& t) { return e.ts < t; });
    return static_cast<std::size_t>(it - entries_.begin());
  }

  void insert(std::size_t pos, const core::Timestamp& ts, Update update) {
    entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(pos),
                    Ent{ts, std::move(update)});
  }

  void erase_prefix(std::size_t n) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void truncate(std::size_t keep_n) { entries_.resize(keep_n); }

  void clear() { entries_.clear(); }

  std::vector<core::Timestamp> timestamps() const {
    std::vector<core::Timestamp> out;
    out.reserve(entries_.size());
    for (const Ent& e : entries_) out.push_back(e.ts);
    return out;
  }

  std::size_t arena_slots() const { return entries_.size(); }
  std::size_t arena_free_slots() const { return 0; }

 private:
  struct Ent {
    core::Timestamp ts;
    Update update;
  };
  std::vector<Ent> entries_;
};

}  // namespace detail

/// One (timestamp, update) pair handed to UpdateLog::insert. Hoisted out of
/// the class so it is the same type across layouts — the SoA/AoS
/// differential tests feed one arrival sequence to both.
template <core::Replicable App>
struct LogEntry {
  core::Timestamp ts;
  typename App::Update update;
};

template <core::Replicable App, LogLayout Layout = LogLayout::kSoA>
class UpdateLog {
 public:
  using State = typename App::State;
  using Update = typename App::Update;
  static constexpr LogLayout kLayout = Layout;

  using Entry = LogEntry<App>;

  /// A state snapshot: `state` is the fold of the first `pos` retained
  /// entries over the base. Explicit positions (instead of the old implicit
  /// j*interval scheme) are what let compaction shift snapshots in place
  /// and the geometric mode keep a sparse set.
  struct Checkpoint {
    std::size_t pos = 0;
    State state;
  };

  /// `checkpoint_interval` = number of log entries between state snapshots;
  /// 0 disables checkpoints (every mid-insert replays from the base — the
  /// naive strategy, kept for the E10 ablation). `max_checkpoints` bounds
  /// the snapshot count: when exceeded, snapshots are geometrically thinned
  /// (dense near the tail, sparse near the base), keeping O(log n) `State`
  /// copies instead of O(n/interval); 0 keeps every snapshot.
  explicit UpdateLog(std::size_t checkpoint_interval = 32,
                     std::size_t max_checkpoints = 0)
      : checkpoint_interval_(checkpoint_interval),
        max_checkpoints_(max_checkpoints),
        base_(App::initial()),
        state_(base_) {
    // Checkpoint 0 is always the base state.
    checkpoints_.push_back(Checkpoint{0, base_});
  }

  /// Merge an entry, preserving timestamp order. Duplicate timestamps are
  /// rejected (timestamps are globally unique by construction). Returns the
  /// position at which the entry landed.
  std::size_t insert(Entry entry) {
    // Compaction safety: nothing may ever land below the fold point — the
    // stability protocol (promises) guarantees it; a violation here means
    // a protocol bug, not a data race.
    assert(!(entry.ts < base_cut_));
    const std::size_t pos = store_.lower_bound(entry.ts);
    assert(pos == store_.size() || store_.ts_at(pos) != entry.ts);
    const core::Timestamp ts = entry.ts;

    if (pos == store_.size()) {
      // Fast path: in-order arrival; apply directly on the current state.
      store_.insert(pos, ts, std::move(entry.update));
      App::apply(store_.update_at(pos), state_);
      ++stats_.tail_appends;
      ++stats_.redone_updates;
      trace(obs::EventType::kMergeTailAppend, ts);
      maybe_checkpoint();
      return pos;
    }

    // Out-of-order arrival: every update at position >= pos is "undone" and
    // then redone after the newcomer.
    const std::size_t displaced = store_.size() - pos;
    stats_.undone_updates += displaced;
    ++stats_.mid_inserts;
    trace(obs::EventType::kMergeMidInsert, ts, displaced);
    trace(obs::EventType::kMergeUndo, ts, displaced);
    store_.insert(pos, ts, std::move(entry.update));
    invalidate_checkpoints_after(pos);
    recompute_from_checkpoint();
    trace(obs::EventType::kMergeRedo, ts, store_.size() - pos);
    return pos;
  }

  /// The merged database state (reflects all known updates in ts order).
  const State& state() const { return state_; }

  std::size_t size() const { return store_.size(); }
  /// Timestamp / update of the retained entry at position `i`. Split
  /// accessors instead of the old entry(i) pair: the SoA layout has no
  /// Entry object to hand back, and callers almost always want one column.
  const core::Timestamp& ts_at(std::size_t i) const {
    assert(i < store_.size());
    return store_.ts_at(i);
  }
  const Update& update_at(std::size_t i) const {
    assert(i < store_.size());
    return store_.update_at(i);
  }

  /// Timestamps of every known update, in order. This *is* the prefix
  /// subsequence a decision part sees (paper section 3.1, condition (1)).
  /// Under the SoA layout this is one contiguous column copy.
  std::vector<core::Timestamp> known_timestamps() const {
    return store_.timestamps();
  }

  bool contains(const core::Timestamp& ts) const {
    const std::size_t pos = store_.lower_bound(ts);
    return pos != store_.size() && store_.ts_at(pos) == ts;
  }

  const EngineStats& stats() const { return stats_; }
  EngineStats& mutable_stats() { return stats_; }

  /// Attach the execution tracer. `node` stamps events with the owning
  /// replica; `now` supplies simulated time (the log itself is clockless —
  /// standalone uses may omit it and events carry t=0).
  void set_tracer(obs::Tracer* tracer, sim::NodeId node,
                  std::function<sim::Time()> now = {}) {
    tracer_ = tracer;
    trace_node_ = node;
    trace_now_ = std::move(now);
  }

  /// Recompute the state from scratch (i.e. from the compaction base) —
  /// test oracle for the checkpointed incremental maintenance.
  State recompute_naive() const {
    State s = base_;
    for (std::size_t i = 0; i < store_.size(); ++i) {
      App::apply(store_.update_at(i), s);
    }
    return s;
  }

  /// Discard obsolete information ([SL], cited by the paper): fold every
  /// entry with timestamp < `cut` into the base state and drop it from the
  /// log. SAFE ONLY when the caller has cluster-wide promises that no
  /// update with a smaller timestamp can ever arrive (the Node computes
  /// that stability point from the announcement protocol). Returns the
  /// number of entries folded.
  std::size_t compact_before(const core::Timestamp& cut) {
    if (cut <= base_cut_) return 0;
    const std::size_t n = store_.lower_bound(cut);
    if (n == 0) {
      base_cut_ = cut;
      return 0;
    }
    // Advance the base from the newest snapshot at or below the fold point
    // — O(entries since that snapshot), not O(folded prefix).
    std::size_t j = checkpoints_.size() - 1;
    while (checkpoints_[j].pos > n) --j;
    base_ = std::move(checkpoints_[j].state);
    for (std::size_t i = checkpoints_[j].pos; i < n; ++i) {
      App::apply(store_.update_at(i), base_);
    }
    store_.erase_prefix(n);
    base_cut_ = cut;
    folded_count_ += n;
    stats_.entries_folded += n;
    // Snapshots above the fold point still describe valid suffix states —
    // shift their positions instead of rebuilding them by replay.
    std::vector<Checkpoint> kept;
    kept.push_back(Checkpoint{0, base_});
    for (Checkpoint& cp : checkpoints_) {
      if (cp.pos <= n) continue;  // folded into (or below) the new base
      kept.push_back(Checkpoint{cp.pos - n, std::move(cp.state)});
    }
    checkpoints_ = std::move(kept);
    // state_ is unchanged by folding (same updates, same order).
    return n;
  }

  /// Amnesia recovery (sim/crash.hpp): the merged log is volatile and did
  /// not survive the crash. Reset to the application's initial state —
  /// entries, checkpoints, compaction base, everything — so the node can
  /// resynchronize from scratch. Counters are cumulative observability and
  /// deliberately survive (the lifetime undo/redo work really happened).
  void reset_to_initial() {
    store_.clear();
    base_ = App::initial();
    base_cut_ = core::Timestamp{};
    folded_count_ = 0;
    state_ = base_;
    checkpoints_.clear();
    checkpoints_.push_back(Checkpoint{0, base_});
  }

  /// Stale-disk recovery (sim/crash.hpp, RecoveryMode::kStaleDisk): the
  /// stable log survived the crash but its suffix past `keep_n` retained
  /// entries was lost with the disk — roll back to that stale point. The
  /// compaction base (cluster-stable prefix) is older than any surviving
  /// checkpoint and always survives; snapshots past the cut are dropped and
  /// the working state is rebuilt from the newest surviving one. Truncated
  /// updates are NOT forgotten by the cluster: they re-arrive through
  /// outbox replay and anti-entropy and re-merge via the ordinary undo/redo
  /// path. Counters survive (cumulative observability). Returns the number
  /// of entries dropped.
  std::size_t truncate_suffix(std::size_t keep_n) {
    if (keep_n >= store_.size()) return 0;
    const std::size_t dropped = store_.size() - keep_n;
    store_.truncate(keep_n);
    std::size_t keep_cp = checkpoints_.size();
    while (keep_cp > 1 && checkpoints_[keep_cp - 1].pos > keep_n) --keep_cp;
    checkpoints_.resize(keep_cp);
    state_ = checkpoints_.back().state;
    for (std::size_t i = checkpoints_.back().pos; i < store_.size(); ++i) {
      App::apply(store_.update_at(i), state_);
    }
    return dropped;
  }

  /// State snapshots currently held (>= 1: the base is always one).
  std::size_t checkpoints_retained() const { return checkpoints_.size(); }

  /// Entries folded into the base so far.
  std::size_t folded_count() const { return folded_count_; }
  /// All updates ever merged here (retained + folded).
  std::size_t total_merged() const { return store_.size() + folded_count_; }
  const core::Timestamp& base_cut() const { return base_cut_; }

  /// Arena footprint (SoA: slots allocated / currently free for reuse; AoS
  /// reports its entry count and no free list). Tests pin that compaction
  /// and truncation recycle slots instead of growing the arena O(history).
  std::size_t arena_slots() const { return store_.arena_slots(); }
  std::size_t arena_free_slots() const { return store_.arena_free_slots(); }

  /// State reflecting only the entries with timestamp < ts — the complete-
  /// prefix view a serializable transaction positioned at `ts` must see
  /// (mixed-mode extension; paper section 6). Replays from the nearest
  /// checkpoint at or before the cut.
  State state_before(const core::Timestamp& ts) const {
    const std::size_t cut = store_.lower_bound(ts);
    std::size_t j = checkpoints_.size() - 1;
    while (checkpoints_[j].pos > cut) --j;
    State s = checkpoints_[j].state;
    for (std::size_t i = checkpoints_[j].pos; i < cut; ++i) {
      App::apply(store_.update_at(i), s);
    }
    return s;
  }

  /// Timestamps of entries strictly before `ts`.
  std::vector<core::Timestamp> known_timestamps_before(
      const core::Timestamp& ts) const {
    const std::size_t cut = store_.lower_bound(ts);
    std::vector<core::Timestamp> out;
    out.reserve(cut);
    for (std::size_t i = 0; i < cut; ++i) out.push_back(store_.ts_at(i));
    return out;
  }

 private:
  using Store = std::conditional_t<Layout == LogLayout::kSoA,
                                   detail::SoALogStore<Update>,
                                   detail::AoSLogStore<Update>>;

  void trace(obs::EventType type, const core::Timestamp& ts,
             std::uint64_t a = 0) const {
    if (!tracer_) return;
    tracer_->record(type, trace_now_ ? trace_now_() : 0.0, trace_node_,
                    ts.logical, ts.node, a);
  }

  void maybe_checkpoint() {
    if (checkpoint_interval_ == 0) return;
    if (store_.size() - checkpoints_.back().pos >= checkpoint_interval_) {
      checkpoints_.push_back(Checkpoint{store_.size(), state_});
      ++stats_.checkpoints_taken;
      trace(obs::EventType::kCheckpointTake, store_.ts_at(store_.size() - 1),
            checkpoints_.size() - 1);
      thin_checkpoints();
    }
  }

  /// Drop snapshots that cover positions > pos (their prefix changed).
  void invalidate_checkpoints_after(std::size_t pos) {
    std::size_t keep = checkpoints_.size();
    while (keep > 1 && checkpoints_[keep - 1].pos > pos) --keep;
    if (keep < checkpoints_.size()) {
      stats_.checkpoints_invalidated += checkpoints_.size() - keep;
      trace(obs::EventType::kCheckpointInvalidate, store_.ts_at(pos),
            checkpoints_.size() - keep);
      checkpoints_.resize(keep);
    }
  }

  /// Rebuild state_ by replaying from the newest surviving snapshot (at or
  /// below the insertion point after invalidation); also re-takes
  /// checkpoints passed on the way.
  void recompute_from_checkpoint() {
    const std::size_t start = checkpoints_.back().pos;
    state_ = checkpoints_.back().state;
    std::size_t last_cp = start;
    for (std::size_t i = start; i < store_.size(); ++i) {
      App::apply(store_.update_at(i), state_);
      ++stats_.redone_updates;
      if (checkpoint_interval_ != 0 &&
          (i + 1) - last_cp >= checkpoint_interval_) {
        checkpoints_.push_back(Checkpoint{i + 1, state_});
        last_cp = i + 1;
        ++stats_.checkpoints_taken;
        thin_checkpoints();
      }
    }
  }

  /// Geometric bounded-count mode: once the snapshot count exceeds
  /// max_checkpoints_, walk from the newest snapshot toward the base and
  /// keep only snapshots whose gap to the last kept one is at least
  /// `interval`, doubling the required gap per kept snapshot. Recent
  /// positions (where mid-inserts land) stay densely covered; O(log n)
  /// snapshots survive overall. The base (pos 0) is always kept.
  void thin_checkpoints() {
    if (max_checkpoints_ == 0 || checkpoints_.size() <= max_checkpoints_) {
      return;
    }
    std::vector<Checkpoint> kept;
    kept.push_back(std::move(checkpoints_.back()));
    std::size_t gap = std::max<std::size_t>(checkpoint_interval_, 1);
    for (std::size_t i = checkpoints_.size() - 1; i-- > 1;) {
      if (kept.back().pos - checkpoints_[i].pos >= gap) {
        kept.push_back(std::move(checkpoints_[i]));
        gap *= 2;
      } else {
        ++stats_.checkpoints_thinned;
      }
    }
    kept.push_back(std::move(checkpoints_.front()));
    std::reverse(kept.begin(), kept.end());
    checkpoints_ = std::move(kept);
  }

  std::size_t checkpoint_interval_;
  std::size_t max_checkpoints_;
  /// Folded prefix: the state of every discarded entry, and the timestamp
  /// below which nothing can ever arrive again.
  State base_;
  core::Timestamp base_cut_{};
  std::size_t folded_count_ = 0;
  Store store_;
  std::vector<Checkpoint> checkpoints_;
  State state_;
  EngineStats stats_;
  // Optional execution tracing (obs/): off is one branch per merge.
  obs::Tracer* tracer_ = nullptr;
  sim::NodeId trace_node_ = 0;
  std::function<sim::Time()> trace_now_;
};

}  // namespace shard
