// Timestamp-ordered update log with undo/redo merging.
//
// Paper section 1.2: "When a node receives new information about a
// transaction, no matter when the transaction was initiated, this
// information must be merged into the node's copy of the database ...
// Because all nodes order the transactions in the same way, they will agree
// on the result of merging identical sets of transactions. Also, at all
// times during execution, each node's copy of the database always reflects
// the effects of all the transactions known to that node, as if they were
// run according to the global timestamp order. Since messages about
// different transactions could arrive at a single node out of timestamp
// order, keeping the copy correct entails frequent undoing and redoing of
// transactions."
//
// This class is that mechanism. The invariant after every insert:
//
//     state() == fold(App::apply, App::initial(), entries sorted by ts)
//
// Out-of-order arrivals trigger an undo/redo: conceptually every update
// after the insertion point is undone and then redone on top of the
// newcomer. Implementing literal inverse updates would require apps to
// supply inverses; instead — like the optimizations of [BK]/[SKS], which
// keep history/checkpoint information to avoid recomputation — we keep
// periodic state checkpoints and replay forward from the nearest checkpoint
// at or before the insertion point. The observable result and the
// undo/redo *counts* (what the thrashing analysis consumes) are identical
// to the literal strategy.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/timestamp.hpp"
#include "obs/tracer.hpp"
#include "shard/engine_stats.hpp"

namespace shard {

template <core::Replicable App>
class UpdateLog {
 public:
  using State = typename App::State;
  using Update = typename App::Update;

  struct Entry {
    core::Timestamp ts;
    Update update;
  };

  /// A state snapshot: `state` is the fold of the first `pos` retained
  /// entries over the base. Explicit positions (instead of the old implicit
  /// j*interval scheme) are what let compaction shift snapshots in place
  /// and the geometric mode keep a sparse set.
  struct Checkpoint {
    std::size_t pos = 0;
    State state;
  };

  /// `checkpoint_interval` = number of log entries between state snapshots;
  /// 0 disables checkpoints (every mid-insert replays from the base — the
  /// naive strategy, kept for the E10 ablation). `max_checkpoints` bounds
  /// the snapshot count: when exceeded, snapshots are geometrically thinned
  /// (dense near the tail, sparse near the base), keeping O(log n) `State`
  /// copies instead of O(n/interval); 0 keeps every snapshot.
  explicit UpdateLog(std::size_t checkpoint_interval = 32,
                     std::size_t max_checkpoints = 0)
      : checkpoint_interval_(checkpoint_interval),
        max_checkpoints_(max_checkpoints),
        base_(App::initial()),
        state_(base_) {
    // Checkpoint 0 is always the base state.
    checkpoints_.push_back(Checkpoint{0, base_});
  }

  /// Merge an entry, preserving timestamp order. Duplicate timestamps are
  /// rejected (timestamps are globally unique by construction). Returns the
  /// position at which the entry landed.
  std::size_t insert(Entry entry) {
    // Compaction safety: nothing may ever land below the fold point — the
    // stability protocol (promises) guarantees it; a violation here means
    // a protocol bug, not a data race.
    assert(!(entry.ts < base_cut_));
    const auto pos_it = std::lower_bound(
        entries_.begin(), entries_.end(), entry.ts,
        [](const Entry& e, const core::Timestamp& ts) { return e.ts < ts; });
    assert(pos_it == entries_.end() || pos_it->ts != entry.ts);
    const std::size_t pos =
        static_cast<std::size_t>(pos_it - entries_.begin());

    if (pos == entries_.size()) {
      // Fast path: in-order arrival; apply directly on the current state.
      const core::Timestamp ts = entry.ts;
      entries_.push_back(std::move(entry));
      App::apply(entries_.back().update, state_);
      ++stats_.tail_appends;
      ++stats_.redone_updates;
      trace(obs::EventType::kMergeTailAppend, ts);
      maybe_checkpoint();
      return pos;
    }

    // Out-of-order arrival: every update at position >= pos is "undone" and
    // then redone after the newcomer.
    const std::size_t displaced = entries_.size() - pos;
    stats_.undone_updates += displaced;
    ++stats_.mid_inserts;
    const core::Timestamp ts = entry.ts;
    trace(obs::EventType::kMergeMidInsert, ts, displaced);
    trace(obs::EventType::kMergeUndo, ts, displaced);
    entries_.insert(pos_it, std::move(entry));
    invalidate_checkpoints_after(pos);
    recompute_from_checkpoint();
    trace(obs::EventType::kMergeRedo, ts, entries_.size() - pos);
    return pos;
  }

  /// The merged database state (reflects all known updates in ts order).
  const State& state() const { return state_; }

  std::size_t size() const { return entries_.size(); }
  const Entry& entry(std::size_t i) const { return entries_.at(i); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Timestamps of every known update, in order. This *is* the prefix
  /// subsequence a decision part sees (paper section 3.1, condition (1)).
  std::vector<core::Timestamp> known_timestamps() const {
    std::vector<core::Timestamp> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.ts);
    return out;
  }

  bool contains(const core::Timestamp& ts) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), ts,
        [](const Entry& e, const core::Timestamp& t) { return e.ts < t; });
    return it != entries_.end() && it->ts == ts;
  }

  const EngineStats& stats() const { return stats_; }
  EngineStats& mutable_stats() { return stats_; }

  /// Attach the execution tracer. `node` stamps events with the owning
  /// replica; `now` supplies simulated time (the log itself is clockless —
  /// standalone uses may omit it and events carry t=0).
  void set_tracer(obs::Tracer* tracer, sim::NodeId node,
                  std::function<sim::Time()> now = {}) {
    tracer_ = tracer;
    trace_node_ = node;
    trace_now_ = std::move(now);
  }

  /// Recompute the state from scratch (i.e. from the compaction base) —
  /// test oracle for the checkpointed incremental maintenance.
  State recompute_naive() const {
    State s = base_;
    for (const Entry& e : entries_) App::apply(e.update, s);
    return s;
  }

  /// Discard obsolete information ([SL], cited by the paper): fold every
  /// entry with timestamp < `cut` into the base state and drop it from the
  /// log. SAFE ONLY when the caller has cluster-wide promises that no
  /// update with a smaller timestamp can ever arrive (the Node computes
  /// that stability point from the announcement protocol). Returns the
  /// number of entries folded.
  std::size_t compact_before(const core::Timestamp& cut) {
    if (cut <= base_cut_) return 0;
    const std::size_t n = index_of_first_at_or_after(cut);
    if (n == 0) {
      base_cut_ = cut;
      return 0;
    }
    // Advance the base from the newest snapshot at or below the fold point
    // — O(entries since that snapshot), not O(folded prefix).
    std::size_t j = checkpoints_.size() - 1;
    while (checkpoints_[j].pos > n) --j;
    base_ = std::move(checkpoints_[j].state);
    for (std::size_t i = checkpoints_[j].pos; i < n; ++i) {
      App::apply(entries_[i].update, base_);
    }
    entries_.erase(entries_.begin(), entries_.begin() + n);
    base_cut_ = cut;
    folded_count_ += n;
    stats_.entries_folded += n;
    // Snapshots above the fold point still describe valid suffix states —
    // shift their positions instead of rebuilding them by replay.
    std::vector<Checkpoint> kept;
    kept.push_back(Checkpoint{0, base_});
    for (Checkpoint& cp : checkpoints_) {
      if (cp.pos <= n) continue;  // folded into (or below) the new base
      kept.push_back(Checkpoint{cp.pos - n, std::move(cp.state)});
    }
    checkpoints_ = std::move(kept);
    // state_ is unchanged by folding (same updates, same order).
    return n;
  }

  /// Amnesia recovery (sim/crash.hpp): the merged log is volatile and did
  /// not survive the crash. Reset to the application's initial state —
  /// entries, checkpoints, compaction base, everything — so the node can
  /// resynchronize from scratch. Counters are cumulative observability and
  /// deliberately survive (the lifetime undo/redo work really happened).
  void reset_to_initial() {
    entries_.clear();
    base_ = App::initial();
    base_cut_ = core::Timestamp{};
    folded_count_ = 0;
    state_ = base_;
    checkpoints_.clear();
    checkpoints_.push_back(Checkpoint{0, base_});
  }

  /// Stale-disk recovery (sim/crash.hpp, RecoveryMode::kStaleDisk): the
  /// stable log survived the crash but its suffix past `keep_n` retained
  /// entries was lost with the disk — roll back to that stale point. The
  /// compaction base (cluster-stable prefix) is older than any surviving
  /// checkpoint and always survives; snapshots past the cut are dropped and
  /// the working state is rebuilt from the newest surviving one. Truncated
  /// updates are NOT forgotten by the cluster: they re-arrive through
  /// outbox replay and anti-entropy and re-merge via the ordinary undo/redo
  /// path. Counters survive (cumulative observability). Returns the number
  /// of entries dropped.
  std::size_t truncate_suffix(std::size_t keep_n) {
    if (keep_n >= entries_.size()) return 0;
    const std::size_t dropped = entries_.size() - keep_n;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(keep_n),
                   entries_.end());
    std::size_t keep_cp = checkpoints_.size();
    while (keep_cp > 1 && checkpoints_[keep_cp - 1].pos > keep_n) --keep_cp;
    checkpoints_.resize(keep_cp);
    state_ = checkpoints_.back().state;
    for (std::size_t i = checkpoints_.back().pos; i < entries_.size(); ++i) {
      App::apply(entries_[i].update, state_);
    }
    return dropped;
  }

  /// State snapshots currently held (>= 1: the base is always one).
  std::size_t checkpoints_retained() const { return checkpoints_.size(); }

  /// Entries folded into the base so far.
  std::size_t folded_count() const { return folded_count_; }
  /// All updates ever merged here (retained + folded).
  std::size_t total_merged() const { return entries_.size() + folded_count_; }
  const core::Timestamp& base_cut() const { return base_cut_; }

  /// State reflecting only the entries with timestamp < ts — the complete-
  /// prefix view a serializable transaction positioned at `ts` must see
  /// (mixed-mode extension; paper section 6). Replays from the nearest
  /// checkpoint at or before the cut.
  State state_before(const core::Timestamp& ts) const {
    const std::size_t cut = index_of_first_at_or_after(ts);
    std::size_t j = checkpoints_.size() - 1;
    while (checkpoints_[j].pos > cut) --j;
    State s = checkpoints_[j].state;
    for (std::size_t i = checkpoints_[j].pos; i < cut; ++i) {
      App::apply(entries_[i].update, s);
    }
    return s;
  }

  /// Timestamps of entries strictly before `ts`.
  std::vector<core::Timestamp> known_timestamps_before(
      const core::Timestamp& ts) const {
    const std::size_t cut = index_of_first_at_or_after(ts);
    std::vector<core::Timestamp> out;
    out.reserve(cut);
    for (std::size_t i = 0; i < cut; ++i) out.push_back(entries_[i].ts);
    return out;
  }

 private:
  void trace(obs::EventType type, const core::Timestamp& ts,
             std::uint64_t a = 0) const {
    if (!tracer_) return;
    tracer_->record(type, trace_now_ ? trace_now_() : 0.0, trace_node_,
                    ts.logical, ts.node, a);
  }

  std::size_t index_of_first_at_or_after(const core::Timestamp& ts) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), ts,
        [](const Entry& e, const core::Timestamp& t) { return e.ts < t; });
    return static_cast<std::size_t>(it - entries_.begin());
  }

  void maybe_checkpoint() {
    if (checkpoint_interval_ == 0) return;
    if (entries_.size() - checkpoints_.back().pos >= checkpoint_interval_) {
      checkpoints_.push_back(Checkpoint{entries_.size(), state_});
      ++stats_.checkpoints_taken;
      trace(obs::EventType::kCheckpointTake, entries_.back().ts,
            checkpoints_.size() - 1);
      thin_checkpoints();
    }
  }

  /// Drop snapshots that cover positions > pos (their prefix changed).
  void invalidate_checkpoints_after(std::size_t pos) {
    std::size_t keep = checkpoints_.size();
    while (keep > 1 && checkpoints_[keep - 1].pos > pos) --keep;
    if (keep < checkpoints_.size()) {
      stats_.checkpoints_invalidated += checkpoints_.size() - keep;
      trace(obs::EventType::kCheckpointInvalidate, entries_[pos].ts,
            checkpoints_.size() - keep);
      checkpoints_.resize(keep);
    }
  }

  /// Rebuild state_ by replaying from the newest surviving snapshot (at or
  /// below the insertion point after invalidation); also re-takes
  /// checkpoints passed on the way.
  void recompute_from_checkpoint() {
    const std::size_t start = checkpoints_.back().pos;
    state_ = checkpoints_.back().state;
    std::size_t last_cp = start;
    for (std::size_t i = start; i < entries_.size(); ++i) {
      App::apply(entries_[i].update, state_);
      ++stats_.redone_updates;
      if (checkpoint_interval_ != 0 &&
          (i + 1) - last_cp >= checkpoint_interval_) {
        checkpoints_.push_back(Checkpoint{i + 1, state_});
        last_cp = i + 1;
        ++stats_.checkpoints_taken;
        thin_checkpoints();
      }
    }
  }

  /// Geometric bounded-count mode: once the snapshot count exceeds
  /// max_checkpoints_, walk from the newest snapshot toward the base and
  /// keep only snapshots whose gap to the last kept one is at least
  /// `interval`, doubling the required gap per kept snapshot. Recent
  /// positions (where mid-inserts land) stay densely covered; O(log n)
  /// snapshots survive overall. The base (pos 0) is always kept.
  void thin_checkpoints() {
    if (max_checkpoints_ == 0 || checkpoints_.size() <= max_checkpoints_) {
      return;
    }
    std::vector<Checkpoint> kept;
    kept.push_back(std::move(checkpoints_.back()));
    std::size_t gap = std::max<std::size_t>(checkpoint_interval_, 1);
    for (std::size_t i = checkpoints_.size() - 1; i-- > 1;) {
      if (kept.back().pos - checkpoints_[i].pos >= gap) {
        kept.push_back(std::move(checkpoints_[i]));
        gap *= 2;
      } else {
        ++stats_.checkpoints_thinned;
      }
    }
    kept.push_back(std::move(checkpoints_.front()));
    std::reverse(kept.begin(), kept.end());
    checkpoints_ = std::move(kept);
  }

  std::size_t checkpoint_interval_;
  std::size_t max_checkpoints_;
  /// Folded prefix: the state of every discarded entry, and the timestamp
  /// below which nothing can ever arrive again.
  State base_;
  core::Timestamp base_cut_{};
  std::size_t folded_count_ = 0;
  std::vector<Entry> entries_;
  std::vector<Checkpoint> checkpoints_;
  State state_;
  EngineStats stats_;
  // Optional execution tracing (obs/): off is one branch per merge.
  obs::Tracer* tracer_ = nullptr;
  sim::NodeId trace_node_ = 0;
  std::function<sim::Time()> trace_now_;
};

}  // namespace shard
