#include "shard/engine_stats.hpp"

#include <sstream>

namespace shard {

std::string EngineStats::summary() const {
  std::ostringstream os;
  os << "engine: decisions=" << decisions_run << " tail=" << tail_appends
     << " mid=" << mid_inserts << " undone=" << undone_updates
     << " redone=" << redone_updates << " ckpt=" << checkpoints_taken
     << " ckpt_inval=" << checkpoints_invalidated
     << " folded=" << entries_folded;
  if (crashes > 0) {
    os << " crashes=" << crashes << " recoveries=" << recoveries
       << " rejected=" << rejected_submissions
       << " catch_up=" << catch_up_updates << " downtime=" << downtime
       << " recovery_lag=" << recovery_lag;
  }
  return os.str();
}

}  // namespace shard
