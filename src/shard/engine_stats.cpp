#include "shard/engine_stats.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace shard {

std::string EngineStats::summary() const {
  std::ostringstream os;
  os << "engine: decisions=" << decisions_run << " tail=" << tail_appends
     << " mid=" << mid_inserts << " undone=" << undone_updates
     << " redone=" << redone_updates << " ckpt=" << checkpoints_taken
     << " ckpt_inval=" << checkpoints_invalidated
     << " folded=" << entries_folded;
  if (checkpoints_thinned > 0) {
    os << " ckpt_thinned=" << checkpoints_thinned;
  }
  if (crashes > 0) {
    os << " crashes=" << crashes << " recoveries=" << recoveries
       << " rejected=" << rejected_submissions
       << " catch_up=" << catch_up_updates << " downtime=" << downtime
       << " recovery_lag=" << recovery_lag;
  }
  return os.str();
}

void EngineStats::export_to(obs::MetricsRegistry& reg,
                            const std::string& prefix) const {
  reg.add_counter(prefix + ".decisions_run", decisions_run);
  reg.add_counter(prefix + ".tail_appends", tail_appends);
  reg.add_counter(prefix + ".mid_inserts", mid_inserts);
  reg.add_counter(prefix + ".undone_updates", undone_updates);
  reg.add_counter(prefix + ".redone_updates", redone_updates);
  reg.add_counter(prefix + ".checkpoints_taken", checkpoints_taken);
  reg.add_counter(prefix + ".checkpoints_invalidated",
                  checkpoints_invalidated);
  reg.add_counter(prefix + ".checkpoints_thinned", checkpoints_thinned);
  reg.add_counter(prefix + ".entries_folded", entries_folded);
  reg.add_counter(prefix + ".crashes", crashes);
  reg.add_counter(prefix + ".recoveries", recoveries);
  reg.add_counter(prefix + ".rejected_submissions", rejected_submissions);
  reg.add_counter(prefix + ".catch_up_updates", catch_up_updates);
  reg.set_gauge(prefix + ".downtime", downtime);
  reg.set_gauge(prefix + ".recovery_lag", recovery_lag);
}

}  // namespace shard
