// Shared result type for all analysis passes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace analysis {

/// Outcome of a condition/theorem check over an execution: either clean, or
/// a list of human-readable violations (each naming the transaction index
/// and the quantity that broke the bound).
class CheckReport {
 public:
  CheckReport() = default;
  explicit CheckReport(std::string title) : title_(std::move(title)) {}

  /// Sentinel for a violation with no attributed transaction.
  static constexpr std::size_t kNoTx = static_cast<std::size_t>(-1);

  bool ok() const { return violations_.empty(); }
  void add_violation(std::string v) {
    violations_.push_back(std::move(v));
    tx_of_.push_back(kNoTx);
  }
  /// Violation attributed to transaction index `tx` in the checked
  /// execution — lets diagnostics (analysis/trace_dump.hpp) find the
  /// offending update and dump the trace window around it.
  void add_violation(std::string v, std::size_t tx) {
    violations_.push_back(std::move(v));
    tx_of_.push_back(tx);
  }
  const std::vector<std::string>& violations() const { return violations_; }
  /// The transaction attributed to violations()[i], kNoTx when none —
  /// the message<->tx pairing incident bundles are seeded from.
  std::size_t violation_tx(std::size_t i) const { return tx_of_[i]; }
  /// Transaction indices named by violations, sorted and deduplicated
  /// (violations without an attributed index contribute nothing).
  std::vector<std::size_t> violating_txs() const;
  const std::string& title() const { return title_; }

  /// Merge another report's violations into this one.
  void absorb(const CheckReport& other);

  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> violations_;
  std::vector<std::size_t> tx_of_;  ///< Parallel to violations_ (kNoTx gaps).
};

}  // namespace analysis
