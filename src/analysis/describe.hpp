// Human-readable execution dumps — the debugging view used when a checker
// reports a violation, and by examples that want to show a trace.
//
// Requires the app's Request/Update to expose to_string() (all bundled
// apps do); falls back gracefully for apps without it via the `Describable`
// concept below.
#pragma once

#include <sstream>
#include <string>

#include "core/execution.hpp"
#include "core/model.hpp"

namespace analysis {

template <class T>
concept Describable = requires(const T& t) {
  { t.to_string() } -> std::convertible_to<std::string>;
};

template <class T>
std::string describe_or_placeholder(const T& value) {
  if constexpr (Describable<T>) {
    return value.to_string();
  } else {
    (void)value;
    return "<?>";
  }
}

/// One line per transaction: index, timestamp, origin, request, prefix
/// summary (size + missing count), update, external actions.
template <core::Replicable App>
std::string describe_execution(const core::Execution<App>& exec,
                               std::size_t max_rows = 1000) {
  std::ostringstream os;
  os << "execution with " << exec.size() << " transaction(s)\n";
  const std::size_t rows = std::min(exec.size(), max_rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& tx = exec.tx(i);
    os << "  [" << i << "] ts=" << tx.ts.to_string() << " node=" << tx.origin
       << " t=" << tx.real_time << " "
       << describe_or_placeholder(tx.request) << " saw " << tx.prefix.size()
       << "/" << i << " -> " << describe_or_placeholder(tx.update);
    for (const core::ExternalAction& a : tx.external_actions) {
      os << " [" << a.kind << " " << a.subject << "]";
    }
    os << "\n";
  }
  if (rows < exec.size()) {
    os << "  ... " << (exec.size() - rows) << " more\n";
  }
  return os.str();
}

/// The per-transaction cost trajectory of the actual states, for apps with
/// costs — a quick way to see where a violation crept in.
template <core::Application App>
std::string describe_cost_trajectory(const core::Execution<App>& exec,
                                     int constraint) {
  std::ostringstream os;
  typename App::State s = App::initial();
  os << "constraint " << constraint << " costs: " << App::cost(s, constraint);
  for (std::size_t i = 0; i < exec.size(); ++i) {
    App::apply(exec.tx(i).update, s);
    os << " -> " << App::cost(s, constraint);
  }
  os << "\n";
  return os.str();
}

}  // namespace analysis
