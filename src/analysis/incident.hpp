// Checker -> incident wiring: both violation sources reduced to seeds.
//
// obs::IncidentReport (obs/incident.hpp) assembles forensic bundles from
// IncidentSeed rows and an event stream; it deliberately knows nothing
// about checkers. This header is the other half: the post-hoc oracles
// (CheckReport over an assembled Execution) and the streaming checker
// (seeds recorded live at detection time) each map onto the same build
// call, so the bundle format — and everything downstream: trace_dump, the
// e26 harness, the CI artifact — is identical no matter which checker
// fired.
//
// The two sources differ in exactly the way the epoch-attribution rule
// predicts: post-hoc seeds carry no detection instant (the oracle replays
// a finished run), so their detected epoch falls back to the last chain
// event; streaming seeds carry the simulated time the online checker
// actually flagged the violation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/streaming.hpp"
#include "core/execution.hpp"
#include "obs/incident.hpp"

namespace analysis {

/// Seeds from a post-hoc report: one per violation with an attributed
/// transaction index, carrying the exact violation message and the
/// transaction's timestamp from the assembled execution.
template <core::Application App>
std::vector<obs::IncidentSeed> incident_seeds(
    const CheckReport& report, const core::Execution<App>& exec) {
  std::vector<obs::IncidentSeed> seeds;
  for (std::size_t i = 0; i < report.violations().size(); ++i) {
    const std::size_t tx = report.violation_tx(i);
    if (tx == CheckReport::kNoTx || tx >= exec.size()) continue;
    obs::IncidentSeed s;
    s.message = report.violations()[i];
    s.tx_index = tx;
    s.ts_logical = exec.tx(tx).ts.logical;
    s.ts_node = exec.tx(tx).ts.node;
    seeds.push_back(std::move(s));
  }
  return seeds;
}

/// Assemble the forensic bundle for a post-hoc report: seeds from the
/// report/execution pairing, attribution over `events` (the retained ring
/// or a full capture). Empty report => empty bundle.
template <core::Application App>
obs::IncidentReport build_incident_report(
    const CheckReport& report, const core::Execution<App>& exec,
    const std::vector<obs::Event>& events,
    const std::vector<obs::PinnedWindow>& pinned = {},
    const obs::MetricsRegistry* metrics = nullptr) {
  return obs::IncidentReport::build(
      report.title().empty() ? "check" : report.title(), events,
      incident_seeds(report, exec), pinned, metrics);
}

/// Assemble the forensic bundle for a streaming checker: its live-recorded
/// seeds (violations and divergence events, with detection instants) plus
/// the windows it pinned when each fired.
template <core::Application App>
obs::IncidentReport build_incident_report(
    const StreamingChecker<App>& checker, const std::vector<obs::Event>& events,
    const obs::MetricsRegistry* metrics = nullptr) {
  return obs::IncidentReport::build("streaming checker", events,
                                    checker.incident_seeds(),
                                    checker.pinned_windows(), metrics);
}

}  // namespace analysis
