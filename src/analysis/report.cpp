#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>

namespace analysis {

std::vector<std::size_t> CheckReport::violating_txs() const {
  std::vector<std::size_t> txs;
  for (const std::size_t tx : tx_of_) {
    if (tx != kNoTx) txs.push_back(tx);
  }
  std::sort(txs.begin(), txs.end());
  txs.erase(std::unique(txs.begin(), txs.end()), txs.end());
  return txs;
}

void CheckReport::absorb(const CheckReport& other) {
  for (const std::string& v : other.violations()) {
    violations_.push_back(other.title().empty() ? v
                                                : other.title() + ": " + v);
  }
  tx_of_.insert(tx_of_.end(), other.tx_of_.begin(), other.tx_of_.end());
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  os << (title_.empty() ? "check" : title_) << ": ";
  if (ok()) {
    os << "OK";
    return os.str();
  }
  os << violations_.size() << " violation(s)";
  for (const std::string& v : violations_) os << "\n  - " << v;
  return os.str();
}

}  // namespace analysis
