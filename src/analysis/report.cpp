#include "analysis/report.hpp"

#include <sstream>

namespace analysis {

void CheckReport::absorb(const CheckReport& other) {
  for (const std::string& v : other.violations()) {
    violations_.push_back(other.title().empty() ? v
                                                : other.title() + ": " + v);
  }
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  os << (title_.empty() ? "check" : title_) << ": ";
  if (ok()) {
    os << "OK";
    return os.str();
  }
  os << violations_.size() << " violation(s)";
  for (const std::string& v : violations_) os << "\n  - " << v;
  return os.str();
}

}  // namespace analysis
