// Counter-example context from the event trace.
//
// When an execution checker rejects, the violation string names a
// transaction index but says nothing about *how* the system got there —
// which merges, drops, crashes and repairs surrounded the offending update.
// This pass joins the two observability worlds: it maps each violating
// transaction index back to its globally-unique timestamp and dumps the
// tracer's ring window around every event that mentions that update.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>

#include "analysis/report.hpp"
#include "core/execution.hpp"
#include "obs/tracer.hpp"

namespace analysis {

/// Render the trace context for every transaction a report's violations
/// attribute (CheckReport::violating_txs). Empty string when the report is
/// clean. `context` = events of surrounding context kept on each side of
/// every matching trace event (obs::Tracer::slice_around).
template <core::Application App>
std::string trace_dump(const CheckReport& report,
                       const core::Execution<App>& exec,
                       const obs::Tracer& tracer, std::size_t context = 6) {
  if (report.ok()) return {};
  std::ostringstream os;
  os << "trace context for "
     << (report.title().empty() ? "check" : report.title()) << ":\n";
  for (std::size_t i : report.violating_txs()) {
    if (i >= exec.size()) continue;
    const core::Timestamp& ts = exec.tx(i).ts;
    os << "-- tx " << i << " ts=" << ts.logical << ":" << ts.node << " --\n";
    const std::vector<obs::Event> slice =
        tracer.slice_around(ts.logical, ts.node, context);
    if (slice.empty()) {
      os << "(no events for this update retained in the trace ring)\n";
    } else {
      os << obs::serialize(slice);
    }
  }
  return os.str();
}

}  // namespace analysis
