// Counter-example context from the event trace.
//
// When an execution checker rejects, the violation string names a
// transaction index but says nothing about *how* the system got there —
// which merges, drops, crashes and repairs surrounded the offending update.
// This pass joins the two observability worlds: it maps each violating
// transaction index back to its globally-unique timestamp, prints the
// update's CAUSAL CHAIN (originate -> fan-out -> per-replica deliver ->
// merge, joined by obs::CausalGraph over the retained ring), its
// provenance timeline when a LifecycleTracker is supplied, and finally the
// ring window around every event that mentions the update — chain first,
// because "which path did this update take" is the question a violated
// theorem poses.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>

#include "analysis/report.hpp"
#include "core/execution.hpp"
#include "obs/causal.hpp"
#include "obs/incident.hpp"
#include "obs/lifecycle.hpp"
#include "obs/tracer.hpp"

namespace analysis {

/// Render an assembled incident bundle (analysis/incident.hpp) — the
/// epoch-attributed successor of the per-tx overloads below: instead of
/// re-deriving chain and window per violating transaction, it prints the
/// bundle's admission/detection epochs, critical-path decomposition and
/// contributing updates next to them. Empty bundle => empty string.
inline std::string trace_dump(const obs::IncidentReport& incidents) {
  if (incidents.empty()) return {};
  return incidents.render();
}

/// Render the trace context for every transaction a report's violations
/// attribute (CheckReport::violating_txs). Empty string when the report is
/// clean. `context` = events of surrounding context kept on each side of
/// every matching trace event (obs::TraceSource::slice_around). `lifecycle`,
/// when non-null, adds the update's per-replica provenance timeline —
/// lifecycle state covers the whole run, so it survives ring eviction.
template <core::Application App>
std::string trace_dump(const CheckReport& report,
                       const core::Execution<App>& exec,
                       const obs::TraceSource& tracer, std::size_t context = 6,
                       const obs::LifecycleTracker* lifecycle = nullptr) {
  if (report.ok()) return {};
  std::ostringstream os;
  os << "trace context for "
     << (report.title().empty() ? "check" : report.title()) << ":\n";
  const std::vector<obs::Event> ring = tracer.ring();
  const obs::CausalGraph graph = obs::CausalGraph::build(ring);
  for (std::size_t i : report.violating_txs()) {
    if (i >= exec.size()) continue;
    const core::Timestamp& ts = exec.tx(i).ts;
    os << "-- tx " << i << " ts=" << ts.logical << ":" << ts.node << " --\n";
    const std::vector<std::size_t> chain =
        graph.update_chain(ts.logical, ts.node);
    if (!chain.empty()) {
      os << "causal chain (" << chain.size() << " events in ring):\n";
      for (const std::size_t k : chain) {
        os << "  [" << k << "] " << obs::serialize({ring[k]});
      }
    }
    if (lifecycle != nullptr) {
      obs::ProvenanceTimeline tl;
      if (lifecycle->timeline(ts.logical, ts.node, tl)) {
        os << "provenance:\n" << tl.render();
      }
    }
    const std::vector<obs::Event> slice =
        tracer.slice_around(ts.logical, ts.node, context);
    if (slice.empty()) {
      os << "(no events for this update retained in the trace ring)\n";
    } else {
      os << "ring window:\n" << obs::serialize(slice);
    }
  }
  return os.str();
}

/// Render pinned counter-example windows (obs::PinnedWindow, captured by a
/// StreamingChecker at the moment each violation was detected). Unlike the
/// live-ring overload above, this cannot come back empty just because the
/// run kept going: the slice was taken before the ring could wrap past the
/// offending update.
template <core::Application App>
std::string trace_dump(const CheckReport& report,
                       const core::Execution<App>& exec,
                       const std::vector<obs::PinnedWindow>& pinned) {
  if (report.ok()) return {};
  std::ostringstream os;
  os << "pinned trace context for "
     << (report.title().empty() ? "check" : report.title()) << ":\n";
  for (std::size_t i : report.violating_txs()) {
    if (i >= exec.size()) continue;
    const core::Timestamp& ts = exec.tx(i).ts;
    os << "-- tx " << i << " ts=" << ts.logical << ":" << ts.node << " --\n";
    bool found = false;
    for (const obs::PinnedWindow& w : pinned) {
      if (w.ts_logical != ts.logical || w.ts_node != ts.node) continue;
      found = true;
      if (w.events.empty()) {
        os << "(window pinned with no ring events)\n";
      } else {
        os << "pinned window:\n" << obs::serialize(w.events);
      }
      break;
    }
    if (!found) os << "(no window pinned for this update)\n";
  }
  return os.str();
}

}  // namespace analysis
