// Airline-specific theorem checkers: the refined witness bounds (Theorems
// 20 and 21, paper section 5.3) and the centralization results (Theorems 22
// and 23, section 5.4).
//
// The refined bounds replace the blunt "missed k of ALL preceding
// transactions" hypothesis with per-person witness information: what
// matters for the overbooking step of a MOVE-UP is only whether it can see
// an *assignment witness* for each person actually assigned, and for a
// MOVE-DOWN whether it can see the *last cancel / last move-down* of each
// person actually absent. The witness-k measured here is typically much
// smaller than the raw missing count (experiment E4 quantifies the gap).
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/compensation.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/report.hpp"
#include "apps/airline/airline.hpp"
#include "apps/airline/witness.hpp"
#include "core/execution.hpp"

namespace analysis {

namespace detail {

/// Updates of all transactions with index < i (the full sequence 𝒜 of
/// section 5.3).
template <class Air>
std::vector<apps::airline::Update> full_updates_before(
    const core::Execution<Air>& exec, std::size_t i) {
  std::vector<apps::airline::Update> out;
  out.reserve(i);
  for (std::size_t j = 0; j < i; ++j) out.push_back(exec.tx(j).update);
  return out;
}

/// Updates at the given ascending index subsequence (the 𝒮 of section 5.3).
template <class Air>
std::vector<apps::airline::Update> updates_at(
    const core::Execution<Air>& exec, const std::vector<std::size_t>& idxs) {
  std::vector<apps::airline::Update> out;
  out.reserve(idxs.size());
  for (std::size_t j : idxs) out.push_back(exec.tx(j).update);
  return out;
}

}  // namespace detail

/// Theorem 20.1 hypothesis size for transaction i: the number of persons P
/// in ASSIGNED-LIST(actual state before i) for which i's prefix subsequence
/// fails to include an assignment witness.
template <class Air>
std::size_t witness_k_overbooking(const core::Execution<Air>& exec,
                                  std::size_t i) {
  namespace al = apps::airline;
  const typename Air::State s = exec.actual_state_before(i);
  const std::vector<al::Update> seen =
      detail::updates_at(exec, exec.tx(i).prefix);
  std::size_t k = 0;
  for (al::Person p : s.assigned) {
    if (!al::find_assignment_witness(seen, p).has_value()) ++k;
  }
  return k;
}

/// Theorem 20.2 hypothesis size for transaction i: persons P mentioned in
/// the full preceding sequence, NOT in ASSIGNED-LIST(actual before i), for
/// which i's prefix fails to include the last cancel(P) or the last
/// move-down(P) of the full sequence.
template <class Air>
std::size_t witness_k_underbooking(const core::Execution<Air>& exec,
                                   std::size_t i) {
  namespace al = apps::airline;
  const typename Air::State s = exec.actual_state_before(i);
  const std::vector<al::Update> full = detail::full_updates_before(exec, i);
  const auto& prefix = exec.tx(i).prefix;
  const auto prefix_has = [&prefix](std::size_t idx) {
    return std::binary_search(prefix.begin(), prefix.end(), idx);
  };
  std::size_t k = 0;
  for (al::Person p : al::persons_mentioned(full)) {
    if (s.is_assigned(p)) continue;
    const auto last_cancel = al::last_index_of(full, al::Update::Kind::kCancel, p);
    const auto last_down = al::last_index_of(full, al::Update::Kind::kMoveDown, p);
    const bool misses_cancel =
        last_cancel.has_value() && !prefix_has(*last_cancel);
    const bool misses_down = last_down.has_value() && !prefix_has(*last_down);
    if (misses_cancel || misses_down) ++k;
  }
  return k;
}

/// Theorem 20: per-transaction step bounds with witness-based k.
///   (1) any T: cost(s',1) <= cost(s,1) or <= OverCost * k_witness;
///   (2) mover T: cost(s',2) <= cost(s,2) or <= UnderCost * k_witness'.
template <class Air>
CheckReport check_theorem20(const core::Execution<Air>& exec) {
  namespace al = apps::airline;
  CheckReport report("theorem 20 refined step bounds");
  const auto states = exec.actual_states();
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const double over_before = Air::cost(states[i], Air::kOverbooking);
    const double over_after = Air::cost(states[i + 1], Air::kOverbooking);
    if (over_after > over_before + 1e-9) {
      const std::size_t kw = witness_k_overbooking(exec, i);
      const double bound = static_cast<double>(Air::kOverbookCost) *
                           static_cast<double>(kw);
      if (over_after > bound + 1e-9) {
        std::ostringstream os;
        os << "tx " << i << ": overbooking cost " << over_after
           << " exceeds witness bound " << bound << " (k_w=" << kw << ")";
        report.add_violation(os.str());
      }
    }
    const auto kind = exec.tx(i).request.kind;
    if (kind == al::Request::Kind::kMoveUp ||
        kind == al::Request::Kind::kMoveDown) {
      const double under_before = Air::cost(states[i], Air::kUnderbooking);
      const double under_after = Air::cost(states[i + 1], Air::kUnderbooking);
      if (under_after > under_before + 1e-9) {
        const std::size_t kw = witness_k_underbooking(exec, i);
        const double bound = static_cast<double>(Air::kUnderbookCost) *
                             static_cast<double>(kw);
        if (under_after > bound + 1e-9) {
          std::ostringstream os;
          os << "tx " << i << ": underbooking cost " << under_after
             << " exceeds witness bound " << bound << " (k_w=" << kw << ")";
          report.add_violation(os.str());
        }
      }
    }
  }
  return report;
}

/// Theorem 21.1: with `seen` a subsequence of the execution's indices, let
/// k = #persons assigned in the final actual state without an assignment
/// witness in `seen`. Then either cost(s,1) <= OverCost*k already, or after
/// an atomic suffix of MOVE-DOWNs (prefix subsequence = seen) the actual
/// overbooking cost is <= OverCost*k.
template <class Air>
CheckReport check_theorem21_overbooking(const core::Execution<Air>& exec,
                                        const std::vector<std::size_t>& seen) {
  namespace al = apps::airline;
  CheckReport report("theorem 21.1 witness compensation bound");
  const typename Air::State s = exec.final_state();
  const std::vector<al::Update> seen_updates = detail::updates_at(exec, seen);
  std::size_t k = 0;
  for (al::Person p : s.assigned) {
    if (!al::find_assignment_witness(seen_updates, p).has_value()) ++k;
  }
  const double bound =
      static_cast<double>(Air::kOverbookCost) * static_cast<double>(k);
  if (Air::cost(s, Air::kOverbooking) <= bound + 1e-9) return report;
  const auto res = run_atomic_compensation<Air>(
      exec, seen, al::Request::move_down(), Air::kOverbooking);
  const double final_cost = Air::cost(res.actual_final, Air::kOverbooking);
  if (final_cost > bound + 1e-9) {
    std::ostringstream os;
    os << "after MOVE-DOWN suffix (" << res.suffix_length
       << " steps), overbooking cost " << final_cost << " > witness bound "
       << bound << " (k=" << k << ")";
    report.add_violation(os.str());
  }
  return report;
}

/// Theorem 21.2 (underbooking analogue): k counts waiting persons without a
/// waiting witness in `seen` plus non-assigned persons whose last cancel /
/// move-down `seen` misses; the suffix consists of MOVE-UPs.
template <class Air>
CheckReport check_theorem21_underbooking(
    const core::Execution<Air>& exec, const std::vector<std::size_t>& seen) {
  namespace al = apps::airline;
  CheckReport report("theorem 21.2 witness compensation bound");
  const typename Air::State s = exec.final_state();
  const std::vector<al::Update> seen_updates = detail::updates_at(exec, seen);
  const std::vector<al::Update> full =
      detail::full_updates_before(exec, exec.size());
  std::size_t k1 = 0;
  for (al::Person p : s.waiting) {
    if (!al::find_waiting_witness(seen_updates, p).has_value()) ++k1;
  }
  std::size_t k2 = 0;
  const auto seen_has = [&seen](std::size_t idx) {
    return std::binary_search(seen.begin(), seen.end(), idx);
  };
  for (al::Person p : al::persons_mentioned(full)) {
    if (s.is_assigned(p)) continue;
    const auto last_cancel = al::last_index_of(full, al::Update::Kind::kCancel, p);
    const auto last_down = al::last_index_of(full, al::Update::Kind::kMoveDown, p);
    if ((last_cancel.has_value() && !seen_has(*last_cancel)) ||
        (last_down.has_value() && !seen_has(*last_down))) {
      ++k2;
    }
  }
  const std::size_t k = std::max(k1, k2);
  const double bound =
      static_cast<double>(Air::kUnderbookCost) * static_cast<double>(k);
  if (Air::cost(s, Air::kUnderbooking) <= bound + 1e-9) return report;
  const auto res = run_atomic_compensation<Air>(
      exec, seen, al::Request::move_up(), Air::kUnderbooking);
  const double final_cost = Air::cost(res.actual_final, Air::kUnderbooking);
  if (final_cost > bound + 1e-9) {
    std::ostringstream os;
    os << "after MOVE-UP suffix (" << res.suffix_length
       << " steps), underbooking cost " << final_cost << " > witness bound "
       << bound << " (k=" << k << ")";
    report.add_violation(os.str());
  }
  return report;
}

/// Theorem 22: "Let e be a transitive execution. Assume that the MOVE-UP
/// transactions are centralized. Assume that for each P the transactions
/// that generate updates involving P are centralized. Then cost(s,1) = 0
/// for every reachable s." The checker verifies each hypothesis (reporting
/// which fails) and then the conclusion.
template <class Air>
CheckReport check_theorem22(const core::Execution<Air>& exec) {
  namespace al = apps::airline;
  CheckReport report("theorem 22 centralized zero overbooking");
  if (!is_transitive(exec)) {
    report.add_violation("hypothesis fails: execution not transitive");
  }
  if (!is_centralized<Air>(exec, [](const al::Request& r) {
        return r.kind == al::Request::Kind::kMoveUp;
      })) {
    report.add_violation("hypothesis fails: MOVE-UPs not centralized");
  }
  // Per-person centralization over *generated updates*.
  std::vector<al::Person> persons;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& u = exec.tx(i).update;
    if (u.kind != al::Update::Kind::kNoop) persons.push_back(u.person);
  }
  std::sort(persons.begin(), persons.end());
  persons.erase(std::unique(persons.begin(), persons.end()), persons.end());
  for (al::Person p : persons) {
    // Group membership by generated update; expressed over indices.
    std::vector<std::size_t> group;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      const auto& u = exec.tx(i).update;
      if (u.kind != al::Update::Kind::kNoop && u.person == p) {
        group.push_back(i);
      }
    }
    for (std::size_t gi = 1; gi < group.size(); ++gi) {
      const auto& prefix = exec.tx(group[gi]).prefix;
      for (std::size_t gj = 0; gj < gi; ++gj) {
        if (!std::binary_search(prefix.begin(), prefix.end(), group[gj])) {
          std::ostringstream os;
          os << "hypothesis fails: person " << al::person_name(p)
             << " transactions not centralized (tx " << group[gi]
             << " misses tx " << group[gj] << ")";
          report.add_violation(os.str());
        }
      }
    }
  }
  if (!report.ok()) return report;
  const auto states = exec.actual_states();
  for (std::size_t si = 0; si < states.size(); ++si) {
    if (Air::cost(states[si], Air::kOverbooking) != 0.0) {
      std::ostringstream os;
      os << "reachable state " << si << " is overbooked: "
         << Air::cost(states[si], Air::kOverbooking);
      report.add_violation(os.str());
    }
  }
  return report;
}

/// Theorem 23: the variant with "at most one REQUEST(P) per person" in
/// place of per-person centralization.
template <class Air>
CheckReport check_theorem23(const core::Execution<Air>& exec) {
  namespace al = apps::airline;
  CheckReport report("theorem 23 centralized zero overbooking (unique requests)");
  if (!is_transitive(exec)) {
    report.add_violation("hypothesis fails: execution not transitive");
  }
  if (!is_centralized<Air>(exec, [](const al::Request& r) {
        return r.kind == al::Request::Kind::kMoveUp;
      })) {
    report.add_violation("hypothesis fails: MOVE-UPs not centralized");
  }
  std::map<al::Person, std::size_t> request_count;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& r = exec.tx(i).request;
    if (r.kind == al::Request::Kind::kRequest) ++request_count[r.person];
  }
  for (const auto& [p, n] : request_count) {
    if (n > 1) {
      std::ostringstream os;
      os << "hypothesis fails: " << al::person_name(p) << " has " << n
         << " REQUESTs";
      report.add_violation(os.str());
    }
  }
  if (!report.ok()) return report;
  const auto states = exec.actual_states();
  for (std::size_t si = 0; si < states.size(); ++si) {
    if (Air::cost(states[si], Air::kOverbooking) != 0.0) {
      std::ostringstream os;
      os << "reachable state " << si << " is overbooked: "
         << Air::cost(states[si], Air::kOverbooking);
      report.add_violation(os.str());
    }
  }
  return report;
}

}  // namespace analysis
