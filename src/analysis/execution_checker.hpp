// Checkers for the system-side conditions of paper section 3.
//
// These validate that a concrete execution (usually assembled from a
// Cluster run) really satisfies the properties the system claims to
// guarantee: the prefix subsequence condition of section 3.1 and the
// refinements of section 3.2 (transitivity, k-completeness, atomicity,
// centralization, orderliness, t-bounded delay). They are the
// "Jepsen-style" half of the reproduction: nothing here trusts the engine —
// every condition is re-derived from the recorded trace by replaying
// updates.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <sstream>
#include <vector>

#include "analysis/messages.hpp"
#include "analysis/report.hpp"
#include "core/execution.hpp"

namespace analysis {

/// Conditions (1)–(4) of section 3.1, plus condition (3)'s determinism: for
/// every transaction instance, re-running its decision part against the
/// reconstructed apparent state must reproduce exactly the update and
/// external actions the original run recorded.
template <core::Application App>
CheckReport check_prefix_subsequence_condition(
    const core::Execution<App>& exec) {
  CheckReport report(msg::kPrefixSubsequenceTitle);
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    // (1): I_i is a subsequence of {0..i-1}, strictly increasing.
    for (std::size_t j = 0; j < tx.prefix.size(); ++j) {
      if (tx.prefix[j] >= i) {
        report.add_violation(msg::prefix_non_preceding(i, tx.prefix[j]), i);
      }
      if (j > 0 && tx.prefix[j] <= tx.prefix[j - 1]) {
        report.add_violation(msg::prefix_not_increasing(i, j), i);
      }
    }
    // (2)+(3): the recorded update/external actions must equal what the
    // decision part yields on the apparent state t = result of the prefix
    // subsequence applied to s0.
    const typename App::State apparent = exec.apparent_state_before(i);
    if (!App::well_formed(apparent)) {
      report.add_violation(msg::apparent_ill_formed(i), i);
    }
    const core::DecisionResult<typename App::Update> redo =
        App::decide(tx.request, apparent);
    if (!(redo.update == tx.update)) {
      report.add_violation(msg::update_mismatch(i), i);
    }
    if (redo.external_actions != tx.external_actions) {
      report.add_violation(msg::actions_mismatch(i), i);
    }
  }
  // (4): actual states must be well-formed (updates preserve
  // well-formedness; s0 is well-formed).
  typename App::State s = App::initial();
  if (!App::well_formed(s)) report.add_violation(msg::initial_ill_formed());
  for (std::size_t i = 0; i < exec.size(); ++i) {
    App::apply(exec.tx(i).update, s);
    if (!App::well_formed(s)) {
      report.add_violation(msg::actual_ill_formed(i), i);
    }
  }
  return report;
}

/// Section 3.2 transitivity: "If T'' is in the prefix subsequence of T' and
/// T' is in the prefix subsequence of T, then T'' is in the prefix
/// subsequence of T." Checked as prefix-closure: prefix(j) ⊆ prefix(i) for
/// every j ∈ prefix(i).
template <core::Application App>
bool is_transitive(const core::Execution<App>& exec) {
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& pi = exec.tx(i).prefix;  // sorted
    for (std::size_t j : pi) {
      for (std::size_t jj : exec.tx(j).prefix) {
        if (!std::binary_search(pi.begin(), pi.end(), jj)) return false;
      }
    }
  }
  return true;
}

/// First (i, j, jj) triple violating transitivity, for diagnostics.
template <core::Application App>
CheckReport check_transitive(const core::Execution<App>& exec) {
  CheckReport report("transitivity (§3.2)");
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& pi = exec.tx(i).prefix;
    for (std::size_t j : pi) {
      for (std::size_t jj : exec.tx(j).prefix) {
        if (!std::binary_search(pi.begin(), pi.end(), jj)) {
          std::ostringstream os;
          os << "tx " << i << " sees tx " << j << " which sees tx " << jj
             << ", but " << jj << " is not in tx " << i << "'s prefix";
          report.add_violation(os.str(), i);
        }
      }
    }
  }
  return report;
}

/// Section 3.2: "transaction T is said to be k-complete in execution e
/// provided that, in e, T sees the results of all but at most k of the
/// preceding transactions."
template <core::Application App>
bool is_k_complete(const core::Execution<App>& exec, std::size_t i,
                   std::size_t k) {
  return exec.missing_count(i) <= k;
}

/// Section 3.1 atomicity of a consecutive index range [first, last]:
/// "(a) each U_j includes each of the other U_k, k < j, in its prefix
/// subsequence, and (b) all U_j have the same subset of the transactions
/// with indices less than `first` in their prefix subsequences."
template <core::Application App>
bool is_atomic(const core::Execution<App>& exec, std::size_t first,
               std::size_t last) {
  if (first > last || last >= exec.size()) return false;
  std::vector<std::size_t> base;  // prefix of `first` restricted to < first
  for (std::size_t idx : exec.tx(first).prefix) {
    if (idx < first) base.push_back(idx);
  }
  for (std::size_t j = first; j <= last; ++j) {
    const auto& pj = exec.tx(j).prefix;
    // (a): must contain first..j-1 exactly as the in-range part.
    for (std::size_t kk = first; kk < j; ++kk) {
      if (!std::binary_search(pj.begin(), pj.end(), kk)) return false;
    }
    // (b): the part below `first` must equal base.
    std::vector<std::size_t> below;
    for (std::size_t idx : pj) {
      if (idx < first) below.push_back(idx);
    }
    if (below != base) return false;
  }
  return true;
}

/// Section 3.2 centralization: "each of the transactions in G includes in
/// its prefix subsequence all the others from G which precede it."
/// `in_group` classifies transactions by their request.
template <core::Application App>
bool is_centralized(
    const core::Execution<App>& exec,
    const std::function<bool(const typename App::Request&)>& in_group) {
  std::vector<std::size_t> group_members;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (!in_group(exec.tx(i).request)) continue;
    const auto& pi = exec.tx(i).prefix;
    for (std::size_t g : group_members) {
      if (!std::binary_search(pi.begin(), pi.end(), g)) return false;
    }
    group_members.push_back(i);
  }
  return true;
}

/// Section 3.2: "if the order of real times is monotonic, we say that the
/// timed execution is orderly."
template <core::Application App>
bool is_orderly(const core::Execution<App>& exec) {
  for (std::size_t i = 1; i < exec.size(); ++i) {
    if (exec.tx(i).real_time < exec.tx(i - 1).real_time) return false;
  }
  return true;
}

/// Section 3.2 t-bounded delay: "the prefix subsequence of each transaction
/// T includes every transaction in the prefix whose real time is at least t
/// smaller than T's real time."
template <core::Application App>
bool has_t_bounded_delay(const core::Execution<App>& exec, double t) {
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    const auto& pi = tx.prefix;
    for (std::size_t j = 0; j < i; ++j) {
      if (exec.tx(j).real_time <= tx.real_time - t &&
          !std::binary_search(pi.begin(), pi.end(), j)) {
        return false;
      }
    }
  }
  return true;
}

/// Smallest t for which the execution has t-bounded delay (the empirical
/// "information staleness" of a run; swept in experiment E7).
template <core::Application App>
double min_bounded_delay(const core::Execution<App>& exec) {
  double t = 0.0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    const auto& pi = tx.prefix;
    for (std::size_t j = 0; j < i; ++j) {
      if (!std::binary_search(pi.begin(), pi.end(), j)) {
        t = std::max(t, tx.real_time - exec.tx(j).real_time);
      }
    }
  }
  return t;
}

/// Histogram of missing-prefix sizes: result[i] = missing_count(i). The raw
/// material for the section 1.3 "probability that transactions are
/// k-complete" analysis (experiment E9).
template <core::Application App>
std::vector<std::size_t> missing_counts(const core::Execution<App>& exec) {
  std::vector<std::size_t> out(exec.size());
  for (std::size_t i = 0; i < exec.size(); ++i) out[i] = exec.missing_count(i);
  return out;
}

}  // namespace analysis
