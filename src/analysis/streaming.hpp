// Streaming online checkers: the post-hoc oracles, evaluated live.
//
// The post-hoc checkers (execution_checker.hpp, cost_bounds.hpp) assemble
// the whole execution after the run and replay it from scratch — O(history)
// state, violations reported only at the end. This module subscribes to the
// node pipeline through shard::StreamObserver and maintains just enough
// state to emit the SAME violations (byte-identical messages, same
// transaction indices) while the run is still going:
//
//  * A per-node SHADOW LOG of true updates mirrors each replica's merged
//    set. Because on_originate fires before any delivery of the new update,
//    the shadow state at decision time IS the oracle's apparent state
//    (fold of the true updates of the decision's prefix, in timestamp
//    order) — so condition (3) is checked right at origination, against
//    exactly what the post-hoc replay would reconstruct.
//  * A per-origin LEDGER of true updates, keyed by broadcast sequence
//    number, is what deliveries merge into the shadows. The wire payload is
//    never trusted: a Byzantine adversary can corrupt it in flight, and the
//    whole point of the untrusting checker is to notice (via the per-
//    delivery divergence check: node state vs clean shadow replay).
//  * A WATERMARK finalizes pending transactions into their global index.
//    Node n can never originate below max_logical_seen(n)+1 (its Lamport
//    clock dominates everything it merged — the checker recomputes this
//    bound itself rather than trusting engine clocks) nor below its oldest
//    serializable reservation; the min of those floors over all nodes is a
//    timestamp below which the transaction sequence is complete, so global
//    indices — and the index-bearing violation messages — are final.
//  * Theorem 5/7 checks fold each finalized true update into one running
//    actual state: cost deltas and invariant bounds fire per transaction,
//    O(1) state instead of the oracle's actual_states() vector.
//
// Conditions (1) and (2) cannot fire on engine-produced executions (the
// Lamport tick is strictly above everything merged, and finalization order
// equals the oracle's assembly order); instead of re-deriving index sets
// the checker keeps an order-violation guard counter that trips if any of
// those structural assumptions is ever observed broken.
//
// Memory is O(window): the watermark lag bounds pending transactions, and
// with Options::bounded_memory the ledgers prune below the slowest node's
// contiguous delivery point and shadows compact below each node's next-
// expected update (E23 asserts the bound). bounded_memory is only sound for
// rewind-free fault plans — amnesia/stale-disk restarts re-deliver history
// the pruning discards — so any rewind permanently disables pruning and the
// caller should leave it off for such plans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/messages.hpp"
#include "analysis/report.hpp"
#include "core/model.hpp"
#include "core/timestamp.hpp"
#include "obs/incident.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "shard/node.hpp"
#include "shard/update_log.hpp"

namespace analysis {

template <core::Application App>
class StreamingChecker : public shard::StreamObserver<App> {
 public:
  using Request = typename App::Request;
  using State = typename App::State;
  using Update = typename App::Update;
  using Record = typename shard::Node<App>::Record;

  /// One theorem-5 check, mirroring check_theorem5's arguments.
  struct Theorem5Config {
    int constraint = 0;
    std::function<bool(const Request&, int)> preserves;
    std::function<double(int, std::size_t)> f;
  };
  /// One theorem-7 check with an explicit k, mirroring check_theorem7's
  /// hypothesis-verifying mode (the streaming checker cannot measure the
  /// run's max missing count before the run ends).
  struct Theorem7Config {
    int constraint = 0;
    std::function<bool(const Request&, int)> unsafe;
    std::function<double(int, std::size_t)> f;
    std::size_t k = 0;
  };

  struct Options {
    std::vector<Theorem5Config> theorem5;
    std::vector<Theorem7Config> theorem7;
    /// Prune ledgers/compact shadows to the delivery window. Only sound
    /// for rewind-free fault plans (see file comment); a rewind disables
    /// pruning for the rest of the run.
    bool bounded_memory = false;
    std::size_t shadow_checkpoint_interval = 32;
    /// Snapshot bound per shadow in bounded mode (0 keeps all).
    std::size_t shadow_max_checkpoints = 8;
    /// When set, a ring window around each violating update is pinned at
    /// detection time, so trace_dump still has the counter-example context
    /// even after the ring wraps (obs::PinnedWindow).
    obs::TraceSource* tracer = nullptr;
    std::size_t pin_context = 6;
    std::size_t max_pinned_windows = 32;
    /// Divergence messages retained (events beyond it are only counted).
    std::size_t max_divergence_messages = 16;
    /// Incident seeds retained (obs::IncidentSeed rows recorded at
    /// detection time, one per violation message — what
    /// analysis::build_incident_report assembles into forensic bundles).
    /// Seeds past the cap are only counted (checker.incident_seeds keeps
    /// the true total).
    std::size_t max_incident_seeds = 32;
  };

  explicit StreamingChecker(std::size_t num_nodes, Options opts = {})
      : opts_(std::move(opts)),
        actual_state_(App::initial()),
        prefix_report_(msg::kPrefixSubsequenceTitle),
        divergence_report_("streaming divergence") {
    for (std::size_t n = 0; n < num_nodes; ++n) {
      shadows_.emplace_back(opts_.shadow_checkpoint_interval,
                            opts_.bounded_memory ? opts_.shadow_max_checkpoints
                                                 : 0);
    }
    reservations_.resize(num_nodes);
    max_logical_seen_.assign(num_nodes, 0);
    delivered_.assign(num_nodes, std::vector<DeliveredFromOrigin>(num_nodes));
    ledger_.resize(num_nodes);
    // The oracle's pre-loop checks run once up front: initial-state
    // well-formedness and theorem 7's reachable-state 0.
    if (!App::well_formed(actual_state_)) {
      prefix_report_.add_violation(msg::initial_ill_formed());
    }
    theorem5_reports_.reserve(opts_.theorem5.size());
    for (std::size_t c = 0; c < opts_.theorem5.size(); ++c) {
      theorem5_reports_.emplace_back(msg::kTheorem5Title);
    }
    theorem7_reports_.reserve(opts_.theorem7.size());
    for (const Theorem7Config& cfg : opts_.theorem7) {
      theorem7_reports_.emplace_back(msg::kTheorem7Title);
      t7_bounds_.push_back(cfg.f(cfg.constraint, cfg.k));
      const double c0 = App::cost(actual_state_, cfg.constraint);
      if (c0 > t7_bounds_.back() + 1e-9) {
        theorem7_reports_.back().add_violation(
            msg::theorem7_state(0, c0, cfg.k, t7_bounds_.back()));
      }
    }
  }

  // --- StreamObserver hooks ---------------------------------------------

  void on_originate(const Record& rec, std::uint64_t origin_seq,
                    sim::Time now) override {
    ++txs_ingested_;
    const core::NodeId n = rec.origin;
    max_logical_seen_[n] = std::max(max_logical_seen_[n], rec.ts.logical);
    shard::UpdateLog<App>& shadow = shadows_[n];

    PendingTx p;
    p.request = rec.request;
    p.update = rec.update;
    p.originated_at = now;
    if (rec.serializable) {
      // The decision saw exactly the merged entries below its reservation.
      p.prefix_size = shadow.folded_count() +
                      shadow.known_timestamps_before(rec.ts).size();
      evaluate_condition3(rec, shadow.state_before(rec.ts), p);
      // Decided: release the reservation's watermark hold.
      auto& rs = reservations_[n];
      if (!rs.empty() && rs.front() == rec.ts) {
        rs.pop_front();
      } else {
        ++order_violations_;
        std::erase(rs, rec.ts);
      }
    } else {
      p.prefix_size = shadow.total_merged();
      evaluate_condition3(rec, shadow.state(), p);
    }
    // Ledger: the TRUE update, keyed (origin, 1-based seq). Deliveries
    // merge from here, never from the (corruptible) wire payload.
    OriginLedger& lg = ledger_[n];
    if (origin_seq != lg.base + lg.entries.size() + 1) ++order_violations_;
    lg.entries.push_back(LedgerEntry{rec.ts, rec.update});
    pending_.emplace(rec.ts, std::move(p));
    note_footprint();
    try_finalize(now);
  }

  void on_deliver(core::NodeId at, core::NodeId origin,
                  std::uint64_t origin_seq, const core::Timestamp& ts,
                  const State& state, sim::Time now) override {
    ++deliveries_;
    max_logical_seen_[at] = std::max(max_logical_seen_[at], ts.logical);
    const LedgerEntry* e = ledger_lookup(origin, origin_seq);
    if (e == nullptr || !(e->ts == ts)) {
      // Unknown seq or a wire whose timestamp contradicts the origin's
      // record: nothing trustworthy to merge.
      ++order_violations_;
      return;
    }
    shard::UpdateLog<App>& shadow = shadows_[at];
    if (shadow.contains(ts)) {
      // A duplicate got past the broadcast dedup — structural breakage.
      ++order_violations_;
      return;
    }
    shadow.insert({e->ts, e->update});
    DeliveredFromOrigin& d = delivered_[at][origin];
    if (origin_seq == d.contig + 1) {
      ++d.contig;
      while (!d.extras.empty() && *d.extras.begin() == d.contig + 1) {
        d.extras.erase(d.extras.begin());
        ++d.contig;
      }
    } else if (origin_seq > d.contig) {
      d.extras.insert(origin_seq);
    }  // else: re-delivery after a rewind; already counted.
    // The untrusting core: the replica's post-merge state must equal the
    // clean replay of the true updates. A corrupted payload — or any merge
    // bug — shows up here, at the delivery that introduced it.
    if (!(state == shadow.state())) {
      ++divergence_events_;
      std::ostringstream os;
      os << "node " << at
         << " state diverges from clean replay after merging ts "
         << ts.logical << ":" << ts.node;
      if (divergence_report_.violations().size() <
          opts_.max_divergence_messages) {
        divergence_report_.add_violation(os.str());
      }
      note_incident(os.str(), CheckReport::kNoTx, ts, now);
      pin_window(ts);
    }
    if (opts_.bounded_memory && !rewound_) compact(at);
    note_footprint();
    try_finalize(now);
  }

  void on_reserve(core::NodeId at, const core::Timestamp& reserved_ts) override {
    reservations_[at].push_back(reserved_ts);
  }

  void on_crash(core::NodeId at, sim::Time) override {
    // Reservations are volatile; their watermark holds die with the node.
    reservations_[at].clear();
  }

  void on_restart(core::NodeId at, sim::RecoveryMode mode, std::size_t keep_n,
                  sim::Time) override {
    if (mode == sim::RecoveryMode::kDurable) return;  // log survived intact
    // History will be re-delivered; retention lower bounds are no longer
    // monotone, so pruning/compaction stops for the rest of the run.
    rewound_ = true;
    if (mode == sim::RecoveryMode::kAmnesia) {
      shadows_[at].reset_to_initial();
      for (DeliveredFromOrigin& d : delivered_[at]) d = DeliveredFromOrigin{};
    } else {  // stale disk: node kept its first keep_n merged entries
      const std::size_t folded = shadows_[at].folded_count();
      if (keep_n >= folded) {
        shadows_[at].truncate_suffix(keep_n - folded);
      } else {
        ++order_violations_;  // node rewound below the cluster-stable prefix
      }
    }
  }

  void export_metrics(obs::MetricsRegistry& reg) const override {
    namespace mn = obs::metric_names;
    reg.add_counter(mn::kCheckerTxsIngested, txs_ingested_);
    reg.add_counter(mn::kCheckerTxsFinalized, txs_finalized_);
    reg.add_counter(mn::kCheckerDeliveries, deliveries_);
    reg.add_counter(mn::kCheckerViolations, violation_count());
    reg.add_counter(mn::kCheckerDivergenceEvents, divergence_events_);
    reg.add_counter(mn::kCheckerOrderViolations, order_violations_);
    reg.add_counter(mn::kCheckerPinnedWindows, pinned_.size());
    reg.add_counter(mn::kCheckerIncidentSeeds, incident_seeds_total_);
    reg.add_counter(mn::kCheckerPendingNow, pending_.size());
    reg.add_counter(mn::kCheckerPeakPending, peak_pending_);
    reg.add_counter(mn::kCheckerPeakLedgerEntries, peak_ledger_);
    reg.add_counter(mn::kCheckerPeakShadowEntries, peak_shadow_);
    reg.histogram(mn::kCheckerFinalizeLag).merge_from(finalize_lag_);
    reg.histogram(mn::kCheckerDetectionLatency).merge_from(detection_latency_);
  }

  // --- results ----------------------------------------------------------

  /// Force-finalize everything still pending (call once, after the run —
  /// the sequence is complete, so every index is final).
  void finish(sim::Time now) {
    while (!pending_.empty()) {
      auto it = pending_.begin();
      finalize_one(it->first, it->second, now);
      pending_.erase(it);
    }
  }

  /// Same title and messages as check_prefix_subsequence_condition.
  const CheckReport& prefix_report() const { return prefix_report_; }
  /// One report per Options::theorem5 entry, as check_theorem5 yields.
  const std::vector<CheckReport>& theorem5_reports() const {
    return theorem5_reports_;
  }
  /// One report per Options::theorem7 entry, as check_theorem7 yields.
  const std::vector<CheckReport>& theorem7_reports() const {
    return theorem7_reports_;
  }
  /// Streaming-only: per-delivery replica-vs-replay divergences. The
  /// post-hoc oracles have no analogue (they never see replica states), so
  /// differential comparisons must exclude this report.
  const CheckReport& divergence_report() const { return divergence_report_; }
  std::uint64_t divergence_events() const { return divergence_events_; }
  std::uint64_t order_violations() const { return order_violations_; }
  std::size_t txs_finalized() const { return txs_finalized_; }

  /// Violation messages across the oracle-equivalent reports (divergence
  /// excluded).
  std::size_t violation_count() const {
    std::size_t n = prefix_report_.violations().size();
    for (const CheckReport& r : theorem5_reports_) n += r.violations().size();
    for (const CheckReport& r : theorem7_reports_) n += r.violations().size();
    return n;
  }

  /// Clean-replay state for node n's merged set — what the replica's state
  /// SHOULD be. Tests use it to prove an applied corruption was
  /// effect-masked (substituted update folded to the same state).
  const State& shadow_state(core::NodeId n) const {
    return shadows_[n].state();
  }

  /// Ring windows pinned at detection time (for analysis::trace_dump).
  const std::vector<obs::PinnedWindow>& pinned_windows() const {
    return pinned_;
  }

  /// Incident seeds recorded at detection time — one per violation message
  /// (divergence events included), each carrying the offending update's
  /// timestamp and the simulated detection instant. The raw material
  /// analysis::build_incident_report turns into epoch-attributed bundles.
  const std::vector<obs::IncidentSeed>& incident_seeds() const {
    return seeds_;
  }
  /// Seeds recorded over the run's lifetime, including past the cap.
  std::uint64_t incident_seeds_total() const { return incident_seeds_total_; }

  /// Current retained footprint (the E23 O(window) assertion target).
  std::size_t retained_entries() const {
    std::size_t n = pending_.size();
    for (const OriginLedger& l : ledger_) n += l.entries.size();
    for (const shard::UpdateLog<App>& s : shadows_) n += s.size();
    return n;
  }

 private:
  struct LedgerEntry {
    core::Timestamp ts;
    Update update;
  };
  struct OriginLedger {
    std::uint64_t base = 0;  ///< Seqs pruned off the front.
    std::deque<LedgerEntry> entries;
  };
  struct DeliveredFromOrigin {
    std::uint64_t contig = 0;  ///< Longest contiguous delivered seq prefix.
    std::set<std::uint64_t> extras;  ///< Out-of-order seqs past the prefix.
  };
  struct PendingTx {
    Request request;
    Update update;
    std::size_t prefix_size = 0;
    bool apparent_ill_formed = false;
    bool update_mismatch = false;
    bool actions_mismatch = false;
    sim::Time originated_at = 0.0;
  };

  const LedgerEntry* ledger_lookup(core::NodeId origin,
                                   std::uint64_t seq) const {
    const OriginLedger& lg = ledger_[origin];
    if (seq <= lg.base || seq > lg.base + lg.entries.size()) return nullptr;
    return &lg.entries[seq - 1 - lg.base];
  }

  /// Condition (3) at decision time: `view` is the shadow's clean apparent
  /// state — identical to the oracle's apparent_state_before, because the
  /// shadow's merged set is exactly the decision's prefix subsequence.
  void evaluate_condition3(const Record& rec, const State& view,
                           PendingTx& p) const {
    if (!App::well_formed(view)) p.apparent_ill_formed = true;
    const core::DecisionResult<Update> redo = App::decide(rec.request, view);
    if (!(redo.update == rec.update)) p.update_mismatch = true;
    if (redo.external_actions != rec.external_actions) {
      p.actions_mismatch = true;
    }
  }

  /// Finalization floor for node n: it can never originate a transaction
  /// below this timestamp. Computed from observed traffic only.
  core::Timestamp watermark() const {
    core::Timestamp w{std::numeric_limits<std::uint64_t>::max(),
                      std::numeric_limits<core::NodeId>::max()};
    for (core::NodeId n = 0; n < shadows_.size(); ++n) {
      const core::Timestamp floor =
          reservations_[n].empty()
              ? core::Timestamp{max_logical_seen_[n] + 1, n}
              : reservations_[n].front();
      w = std::min(w, floor);
    }
    return w;
  }

  void try_finalize(sim::Time now) {
    const core::Timestamp w = watermark();
    while (!pending_.empty() && pending_.begin()->first < w) {
      auto it = pending_.begin();
      finalize_one(it->first, it->second, now);
      pending_.erase(it);
    }
  }

  void finalize_one(const core::Timestamp& ts, PendingTx& p, sim::Time now) {
    if (finalized_any_ && !(last_finalized_ < ts)) ++order_violations_;
    last_finalized_ = ts;
    finalized_any_ = true;
    const std::size_t i = next_index_++;
    bool violated = false;
    if (p.apparent_ill_formed) {
      std::string m = msg::apparent_ill_formed(i);
      note_incident(m, i, ts, now);
      prefix_report_.add_violation(std::move(m), i);
      violated = true;
    }
    if (p.update_mismatch) {
      std::string m = msg::update_mismatch(i);
      note_incident(m, i, ts, now);
      prefix_report_.add_violation(std::move(m), i);
      violated = true;
    }
    if (p.actions_mismatch) {
      std::string m = msg::actions_mismatch(i);
      note_incident(m, i, ts, now);
      prefix_report_.add_violation(std::move(m), i);
      violated = true;
    }
    std::size_t k = 0;
    if (i >= p.prefix_size) {
      k = i - p.prefix_size;
    } else {
      ++order_violations_;  // prefix larger than the predecessors
    }
    // Theorem 5 "before" costs precede the apply; "after" costs follow it.
    t5_before_.resize(opts_.theorem5.size());
    for (std::size_t c = 0; c < opts_.theorem5.size(); ++c) {
      const Theorem5Config& cfg = opts_.theorem5[c];
      if (cfg.preserves(p.request, cfg.constraint)) {
        t5_before_[c] = App::cost(actual_state_, cfg.constraint);
      }
    }
    App::apply(p.update, actual_state_);
    if (!App::well_formed(actual_state_)) {
      std::string m = msg::actual_ill_formed(i);
      note_incident(m, i, ts, now);
      prefix_report_.add_violation(std::move(m), i);
      violated = true;
    }
    for (std::size_t c = 0; c < opts_.theorem5.size(); ++c) {
      const Theorem5Config& cfg = opts_.theorem5[c];
      if (!cfg.preserves(p.request, cfg.constraint)) continue;
      const double after = App::cost(actual_state_, cfg.constraint);
      const double bound = cfg.f(cfg.constraint, k);
      if (after > t5_before_[c] + 1e-9 && after > bound + 1e-9) {
        std::string m = msg::theorem5_step(i, k, t5_before_[c], after, bound);
        note_incident(m, i, ts, now);
        theorem5_reports_[c].add_violation(std::move(m));
        violated = true;
      }
    }
    for (std::size_t c = 0; c < opts_.theorem7.size(); ++c) {
      const Theorem7Config& cfg = opts_.theorem7[c];
      if (cfg.unsafe(p.request, cfg.constraint) && k > cfg.k) {
        std::string m = msg::theorem7_hypothesis(i, k, cfg.k);
        note_incident(m, i, ts, now);
        theorem7_reports_[c].add_violation(std::move(m));
        violated = true;
      }
      const double c_after = App::cost(actual_state_, cfg.constraint);
      if (c_after > t7_bounds_[c] + 1e-9) {
        std::string m = msg::theorem7_state(i + 1, c_after, cfg.k, t7_bounds_[c]);
        note_incident(m, i, ts, now);
        theorem7_reports_[c].add_violation(std::move(m));
        violated = true;
      }
    }
    ++txs_finalized_;
    finalize_lag_.add(now - p.originated_at);
    if (violated) {
      detection_latency_.add(now - p.originated_at);
      pin_window(ts);
    }
  }

  /// One violation message -> one incident seed, stamped with the update's
  /// timestamp and the detection instant (the epoch-of-detection half of
  /// the attribution story; the admission half is derived later from the
  /// trace). `tx` is CheckReport::kNoTx for divergence events, whose
  /// global index is not a finalized transaction index.
  void note_incident(const std::string& message, std::size_t tx,
                     const core::Timestamp& ts, sim::Time now) {
    ++incident_seeds_total_;
    if (seeds_.size() >= opts_.max_incident_seeds) return;
    obs::IncidentSeed s;
    s.message = message;
    s.tx_index = tx;
    s.ts_logical = ts.logical;
    s.ts_node = ts.node;
    s.detected_at = now;
    seeds_.push_back(std::move(s));
  }

  void pin_window(const core::Timestamp& ts) {
    if (opts_.tracer == nullptr || pinned_.size() >= opts_.max_pinned_windows) {
      return;
    }
    obs::PinnedWindow w;
    w.ts_logical = ts.logical;
    w.ts_node = ts.node;
    w.events =
        opts_.tracer->slice_around(ts.logical, ts.node, opts_.pin_context);
    pinned_.push_back(std::move(w));
  }

  /// Bounded-memory maintenance after a delivery at `at`: fold the shadow
  /// below everything that can still arrive there, and drop ledger entries
  /// every node has delivered.
  void compact(core::NodeId at) {
    core::Timestamp cut{std::numeric_limits<std::uint64_t>::max(),
                        std::numeric_limits<core::NodeId>::max()};
    for (core::NodeId o = 0; o < shadows_.size(); ++o) {
      const std::uint64_t next = delivered_[at][o].contig + 1;
      const LedgerEntry* e = ledger_lookup(o, next);
      // Not yet originated: the origin's clock dominates everything it has
      // seen, so its next timestamp is at least this.
      const core::Timestamp t =
          e != nullptr ? e->ts : core::Timestamp{max_logical_seen_[o] + 1, o};
      cut = std::min(cut, t);
    }
    // state_before(reserved_ts) must stay computable for this node's
    // pending reservations (mirrors the node's own [SL] discard rule).
    if (!reservations_[at].empty()) {
      cut = std::min(cut, reservations_[at].front());
    }
    shadows_[at].compact_before(cut);
    for (core::NodeId o = 0; o < shadows_.size(); ++o) {
      std::uint64_t min_contig = std::numeric_limits<std::uint64_t>::max();
      for (core::NodeId n = 0; n < shadows_.size(); ++n) {
        min_contig = std::min(min_contig, delivered_[n][o].contig);
      }
      OriginLedger& lg = ledger_[o];
      while (lg.base < min_contig && !lg.entries.empty()) {
        lg.entries.pop_front();
        ++lg.base;
      }
    }
  }

  void note_footprint() {
    peak_pending_ = std::max(peak_pending_, pending_.size());
    std::size_t lg = 0;
    for (const OriginLedger& l : ledger_) lg += l.entries.size();
    peak_ledger_ = std::max(peak_ledger_, lg);
    std::size_t sh = 0;
    for (const shard::UpdateLog<App>& s : shadows_) sh += s.size();
    peak_shadow_ = std::max(peak_shadow_, sh);
  }

  Options opts_;
  std::vector<shard::UpdateLog<App>> shadows_;  ///< Clean replay per node.
  std::vector<OriginLedger> ledger_;            ///< True updates per origin.
  std::vector<std::vector<DeliveredFromOrigin>> delivered_;  ///< [node][origin]
  std::vector<std::deque<core::Timestamp>> reservations_;    ///< Per node.
  std::vector<std::uint64_t> max_logical_seen_;              ///< Per node.
  std::map<core::Timestamp, PendingTx> pending_;
  State actual_state_;  ///< Running fold of finalized true updates.
  std::size_t next_index_ = 0;
  core::Timestamp last_finalized_{};
  bool finalized_any_ = false;
  bool rewound_ = false;

  CheckReport prefix_report_;
  std::vector<CheckReport> theorem5_reports_;
  std::vector<CheckReport> theorem7_reports_;
  std::vector<double> t7_bounds_;
  CheckReport divergence_report_;
  std::vector<obs::PinnedWindow> pinned_;
  std::vector<obs::IncidentSeed> seeds_;
  std::uint64_t incident_seeds_total_ = 0;
  std::vector<double> t5_before_;

  std::uint64_t txs_ingested_ = 0;
  std::size_t txs_finalized_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t divergence_events_ = 0;
  std::uint64_t order_violations_ = 0;
  std::size_t peak_pending_ = 0;
  std::size_t peak_ledger_ = 0;
  std::size_t peak_shadow_ = 0;
  obs::Histogram finalize_lag_ = obs::Histogram::latency();
  obs::Histogram detection_latency_ = obs::Histogram::latency();
};

}  // namespace analysis
