// Canonical violation-message builders, shared by the post-hoc oracles
// (execution_checker.hpp, cost_bounds.hpp) and the streaming checkers
// (streaming.hpp).
//
// The streaming checkers promise violation sets BYTE-IDENTICAL to the
// post-hoc oracles' (the differential suite in test_streaming_checkers.cpp
// enforces it on every seed). Centralizing the message text makes that
// identity hold by construction instead of by parallel maintenance: a
// wording tweak lands in one place and both sides pick it up.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>

namespace analysis::msg {

// --- prefix-subsequence condition (§3.1) -------------------------------

inline std::string prefix_non_preceding(std::size_t i, std::size_t ref) {
  std::ostringstream os;
  os << "tx " << i << ": prefix references non-preceding tx " << ref;
  return os.str();
}

inline std::string prefix_not_increasing(std::size_t i, std::size_t pos) {
  std::ostringstream os;
  os << "tx " << i << ": prefix not strictly increasing at position " << pos;
  return os.str();
}

inline std::string apparent_ill_formed(std::size_t i) {
  std::ostringstream os;
  os << "tx " << i << ": apparent state not well-formed";
  return os.str();
}

inline std::string update_mismatch(std::size_t i) {
  std::ostringstream os;
  os << "tx " << i
     << ": recorded update differs from decision re-run on apparent "
        "state (condition (3))";
  return os.str();
}

inline std::string actions_mismatch(std::size_t i) {
  std::ostringstream os;
  os << "tx " << i << ": recorded external actions differ from decision "
                      "re-run (condition (3))";
  return os.str();
}

inline std::string initial_ill_formed() { return "initial state ill-formed"; }

inline std::string actual_ill_formed(std::size_t i) {
  std::ostringstream os;
  os << "actual state after tx " << i << " not well-formed";
  return os.str();
}

// --- theorem 5 step bound ----------------------------------------------

inline std::string theorem5_step(std::size_t i, std::size_t k, double before,
                                 double after, double bound) {
  std::ostringstream os;
  os << "tx " << i << " (k=" << k << "): cost " << before << " -> " << after
     << " exceeds f(k)=" << bound;
  return os.str();
}

// --- theorem 7 invariant bound -----------------------------------------

inline std::string theorem7_hypothesis(std::size_t i, std::size_t missing,
                                       std::size_t k) {
  std::ostringstream os;
  os << "hypothesis fails: unsafe tx " << i << " misses " << missing
     << " > k=" << k;
  return os.str();
}

inline std::string theorem7_state(std::size_t si, double cost, std::size_t k,
                                  double bound) {
  std::ostringstream os;
  os << "reachable state " << si << " has cost " << cost << " > f(" << k
     << ")=" << bound;
  return os.str();
}

// Report titles, shared for the same reason as the message bodies.
inline const char* kPrefixSubsequenceTitle = "prefix-subsequence condition (§3.1)";
inline const char* kTheorem5Title = "theorem 5 step bound";
inline const char* kTheorem7Title = "theorem 7 invariant bound";

}  // namespace analysis::msg
