// Fairness checkers (paper sections 4.2 and 5.5).
//
// Section 4.2 defines priority preservation per transaction; section 5.5
// proves the execution-level fairness theorems: once the (centralized)
// moving "agent" has seen both requests, the pair's relative priority is
// frozen (Theorem 25); and with orderly, t-bounded-delay executions, a
// request made at least t earlier keeps priority (Lemma 26 / Theorem 27).
//
// Genericity: the checkers work for any application exposing a Priority
// model (known entities + precedes relation) plus a `Classify` policy that
// says which requests are the REQUEST / CANCEL of an entity and which are
// "movers" (the transactions the agent centralizes). The airline supplies
// `AirlineClassify` below; other resource allocators can supply their own.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/report.hpp"
#include "apps/airline/airline.hpp"
#include "core/execution.hpp"

namespace analysis {

/// Section 4.2, weak form: "T preserves priority provided that if
/// T(s,s) = s' then (a) if P and Q are both known in s and in s', and P
/// precedes Q in s, then P precedes Q in s'; (b) if P is known in s and Q
/// is not, and both are known in s', then P precedes Q in s'."
/// Counterexample search over `sample` decision states.
template <core::Application App, class Prio = typename App::Priority>
CheckReport check_preserves_priority(
    const std::vector<typename App::State>& sample,
    const typename App::Request& request) {
  CheckReport report("preserves-priority (§4.2)");
  for (std::size_t d = 0; d < sample.size(); ++d) {
    const auto& s = sample[d];
    const auto decision = App::decide(request, s);
    typename App::State s_prime = s;
    App::apply(decision.update, s_prime);
    const auto known_before = Prio::known(s);
    const auto known_after = Prio::known(s_prime);
    const auto known_in = [](const auto& v, auto e) {
      return std::find(v.begin(), v.end(), e) != v.end();
    };
    for (auto p : known_after) {
      for (auto q : known_after) {
        if (p == q) continue;
        const bool p_before = known_in(known_before, p);
        const bool q_before = known_in(known_before, q);
        if (p_before && q_before) {
          if (Prio::precedes(s, p, q) && !Prio::precedes(s_prime, p, q)) {
            std::ostringstream os;
            os << "sample " << d << ": order of known pair inverted by T(s,s)";
            report.add_violation(os.str());
          }
        } else if (p_before && !q_before) {
          if (!Prio::precedes(s_prime, p, q)) {
            std::ostringstream os;
            os << "sample " << d
               << ": newly known entity not placed after existing one";
            report.add_violation(os.str());
          }
        }
      }
    }
  }
  return report;
}

/// Section 4.2, strong form: the same two conditions for T(s, s') = s''
/// where the update runs against a state s' other than the observed s.
/// Counterexample search over (decision state, application state) pairs.
template <core::Application App, class Prio = typename App::Priority>
CheckReport check_strongly_preserves_priority(
    const std::vector<typename App::State>& decision_states,
    const std::vector<typename App::State>& apply_states,
    const typename App::Request& request) {
  CheckReport report("strongly-preserves-priority (§4.2)");
  const auto known_in = [](const auto& v, auto e) {
    return std::find(v.begin(), v.end(), e) != v.end();
  };
  for (std::size_t d = 0; d < decision_states.size(); ++d) {
    const auto decision = App::decide(request, decision_states[d]);
    for (std::size_t a = 0; a < apply_states.size(); ++a) {
      const auto& s_prime = apply_states[a];
      typename App::State s_dprime = s_prime;
      App::apply(decision.update, s_dprime);
      const auto known_before = Prio::known(s_prime);
      const auto known_after = Prio::known(s_dprime);
      for (auto p : known_after) {
        for (auto q : known_after) {
          if (p == q) continue;
          const bool p_before = known_in(known_before, p);
          const bool q_before = known_in(known_before, q);
          if (p_before && q_before) {
            if (Prio::precedes(s_prime, p, q) &&
                !Prio::precedes(s_dprime, p, q)) {
              std::ostringstream os;
              os << "decision state " << d << " applied to state " << a
                 << ": order inverted";
              report.add_violation(os.str());
            }
          } else if (p_before && !q_before) {
            if (!Prio::precedes(s_dprime, p, q)) {
              std::ostringstream os;
              os << "decision state " << d << " applied to state " << a
                 << ": new entity ahead of existing one";
              report.add_violation(os.str());
            }
          }
        }
      }
    }
  }
  return report;
}

/// Per-entity request/cancel/mover classification for the fairness
/// theorems. Entity must match App::Priority::Entity.
struct AirlineClassify {
  using Request = apps::airline::Request;
  using Entity = apps::airline::Person;

  std::optional<Entity> request_of(const Request& r) const {
    if (r.kind == Request::Kind::kRequest) return r.person;
    return std::nullopt;
  }
  std::optional<Entity> cancel_of(const Request& r) const {
    if (r.kind == Request::Kind::kCancel) return r.person;
    return std::nullopt;
  }
  bool is_mover(const Request& r) const {
    return r.kind == Request::Kind::kMoveUp ||
           r.kind == Request::Kind::kMoveDown;
  }
};

/// Entities eligible for the fairness theorems: exactly one REQUEST and no
/// CANCEL in the execution. Returns entity -> index of its REQUEST.
template <core::Application App, class Classify>
std::map<typename App::Priority::Entity, std::size_t> eligible_entities(
    const core::Execution<App>& exec, const Classify& cls) {
  using Entity = typename App::Priority::Entity;
  std::map<Entity, std::vector<std::size_t>> requests;
  std::map<Entity, std::size_t> cancels;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (auto e = cls.request_of(exec.tx(i).request)) {
      requests[*e].push_back(i);
    }
    if (auto e = cls.cancel_of(exec.tx(i).request)) ++cancels[*e];
  }
  std::map<Entity, std::size_t> out;
  for (const auto& [e, idxs] : requests) {
    if (idxs.size() == 1 && cancels.find(e) == cancels.end()) {
      out.emplace(e, idxs.front());
    }
  }
  return out;
}

/// Theorem 25: "Let T be a MOVE-UP or MOVE-DOWN transaction having both
/// REQUEST(P) and REQUEST(Q) in its prefix subsequence. Let t be the
/// apparent state, and s the actual state, before T. If P < Q in t, then
/// also P < Q in s and all other actual database states occurring later."
/// Hypotheses (transitive execution, centralized movers, eligible P and Q)
/// must hold; the caller asserts them via the execution_checker functions.
template <core::Application App, class Classify,
          class Prio = typename App::Priority>
CheckReport check_theorem25(const core::Execution<App>& exec,
                            const Classify& cls) {
  CheckReport report("theorem 25 priority freeze");
  const auto eligible = eligible_entities<App>(exec, cls);
  const auto states = exec.actual_states();
  for (std::size_t m = 0; m < exec.size(); ++m) {
    if (!cls.is_mover(exec.tx(m).request)) continue;
    const auto& prefix = exec.tx(m).prefix;
    const auto in_prefix = [&prefix](std::size_t idx) {
      return std::binary_search(prefix.begin(), prefix.end(), idx);
    };
    const typename App::State t = exec.apparent_state_before(m);
    for (const auto& [p, p_req] : eligible) {
      if (!in_prefix(p_req)) continue;
      for (const auto& [q, q_req] : eligible) {
        if (p == q || !in_prefix(q_req)) continue;
        if (!Prio::precedes(t, p, q)) continue;
        // Conclusion: P < Q in the actual state before T and ever after.
        for (std::size_t si = m; si < states.size(); ++si) {
          if (!Prio::precedes(states[si], p, q)) {
            std::ostringstream os;
            os << "mover tx " << m << " saw " << p << " < " << q
               << " but actual state " << si << " has the order inverted";
            report.add_violation(os.str());
          }
        }
      }
    }
  }
  return report;
}

/// Lemma 26: eligible P, Q with REQUEST(P) before REQUEST(Q), such that
/// every mover having REQUEST(Q) in its prefix also has REQUEST(P):
/// then P < Q in every actual state in which both are known.
template <core::Application App, class Classify,
          class Prio = typename App::Priority>
CheckReport check_lemma26(const core::Execution<App>& exec,
                          const Classify& cls) {
  CheckReport report("lemma 26 request-order fairness");
  const auto eligible = eligible_entities<App>(exec, cls);
  const auto states = exec.actual_states();
  for (const auto& [p, p_req] : eligible) {
    for (const auto& [q, q_req] : eligible) {
      if (p == q || !(p_req < q_req)) continue;
      // Hypothesis: movers that see REQUEST(Q) also see REQUEST(P).
      bool hypothesis = true;
      for (std::size_t m = 0; m < exec.size() && hypothesis; ++m) {
        if (!cls.is_mover(exec.tx(m).request)) continue;
        const auto& prefix = exec.tx(m).prefix;
        const bool sees_q =
            std::binary_search(prefix.begin(), prefix.end(), q_req);
        const bool sees_p =
            std::binary_search(prefix.begin(), prefix.end(), p_req);
        if (sees_q && !sees_p) hypothesis = false;
      }
      if (!hypothesis) continue;
      for (std::size_t si = 0; si < states.size(); ++si) {
        const auto known = Prio::known(states[si]);
        const auto has = [&known](auto e) {
          return std::find(known.begin(), known.end(), e) != known.end();
        };
        if (has(p) && has(q) && !Prio::precedes(states[si], p, q)) {
          std::ostringstream os;
          os << "entities " << p << " (req tx " << p_req << ") and " << q
             << " (req tx " << q_req << "): state " << si
             << " orders them against request order";
          report.add_violation(os.str());
        }
      }
    }
  }
  return report;
}

/// Theorem 27: with an orderly, t-bounded-delay, transitive execution and
/// centralized movers, every eligible pair whose REQUESTs are at least
/// `t` apart in real time keeps request order in every actual state where
/// both are known. (The t-bounded-delay hypothesis makes Lemma 26's
/// per-pair hypothesis automatic; this checker verifies the conclusion
/// directly.)
template <core::Application App, class Classify,
          class Prio = typename App::Priority>
CheckReport check_theorem27(const core::Execution<App>& exec,
                            const Classify& cls, double t) {
  CheckReport report("theorem 27 t-separated fairness");
  const auto eligible = eligible_entities<App>(exec, cls);
  const auto states = exec.actual_states();
  for (const auto& [p, p_req] : eligible) {
    for (const auto& [q, q_req] : eligible) {
      if (p == q || !(p_req < q_req)) continue;
      if (exec.tx(q_req).real_time - exec.tx(p_req).real_time < t) continue;
      for (std::size_t si = 0; si < states.size(); ++si) {
        const auto known = Prio::known(states[si]);
        const auto has = [&known](auto e) {
          return std::find(known.begin(), known.end(), e) != known.end();
        };
        if (has(p) && has(q) && !Prio::precedes(states[si], p, q)) {
          std::ostringstream os;
          os << "pair (" << p << "," << q << ") separated by >= " << t
             << "s loses request order in state " << si;
          report.add_violation(os.str());
        }
      }
    }
  }
  return report;
}

/// The section 5.5 anomaly metric: eligible pairs whose final-state order
/// contradicts their request order. The basic airline can have these; the
/// timestamped redesign should have none (experiment E7b).
template <core::Application App, class Classify,
          class Prio = typename App::Priority>
std::size_t final_order_inversions(const core::Execution<App>& exec,
                                   const Classify& cls) {
  const auto eligible = eligible_entities<App>(exec, cls);
  const typename App::State final = exec.final_state();
  const auto known = Prio::known(final);
  const auto has = [&known](auto e) {
    return std::find(known.begin(), known.end(), e) != known.end();
  };
  std::size_t inversions = 0;
  for (const auto& [p, p_req] : eligible) {
    for (const auto& [q, q_req] : eligible) {
      if (p == q || !(p_req < q_req)) continue;
      if (has(p) && has(q) && Prio::precedes(final, q, p)) ++inversions;
    }
  }
  return inversions;
}

}  // namespace analysis
