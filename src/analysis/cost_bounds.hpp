// Executable forms of the cost-bound theorems (paper sections 5.2).
//
// Each checker takes a concrete execution and verifies the theorem's
// conclusion wherever its hypotheses hold, reporting every violation. The
// hypotheses (which transactions preserve a constraint's cost, which are
// unsafe, what f bounds the per-transaction cost increase) are supplied as
// callables — the airline passes its Theory classification, and the other
// apps pass theirs, matching the paper's intent that "the types of
// conditions stated and the techniques for proving their correctness appear
// likely to extend to the other applications".
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/messages.hpp"
#include "analysis/report.hpp"
#include "core/execution.hpp"

namespace analysis {

/// Theorem 5: "Let T be a k-complete transaction instance in e ... Assume
/// that T preserves the cost of constraint i. Then either cost(s',i) <=
/// cost(s,i) or else cost(s',i) <= f(k)."
///
/// Checked for every transaction satisfying `preserves`; k is the
/// transaction's own measured missing count (every transaction is
/// missing_count-complete, and f is monotone in k).
template <core::Application App, class Preserves, class FBound>
CheckReport check_theorem5(const core::Execution<App>& exec, int constraint,
                           Preserves&& preserves, FBound&& f) {
  CheckReport report(msg::kTheorem5Title);
  auto states = exec.actual_states();
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (!preserves(exec.tx(i).request, constraint)) continue;
    const double before = App::cost(states[i], constraint);
    const double after = App::cost(states[i + 1], constraint);
    const std::size_t k = exec.missing_count(i);
    if (after > before + 1e-9 && after > f(constraint, k) + 1e-9) {
      report.add_violation(
          msg::theorem5_step(i, k, before, after, f(constraint, k)));
    }
  }
  return report;
}

/// Theorem 7: "Assume that all transactions preserve the cost of constraint
/// i ... Assume that all occurrences of transactions that are unsafe for
/// constraint i are k-complete. Let s be any state reachable in e. Then
/// cost(s,i) <= f(k)."
///
/// `k` defaults to the measured max missing count over unsafe transactions
/// (the tightest k for which the hypothesis holds).
template <core::Application App, class Unsafe, class FBound>
CheckReport check_theorem7(const core::Execution<App>& exec, int constraint,
                           Unsafe&& unsafe, FBound&& f,
                           std::optional<std::size_t> k_opt = std::nullopt) {
  CheckReport report(msg::kTheorem7Title);
  std::size_t k = 0;
  if (k_opt.has_value()) {
    k = *k_opt;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (unsafe(exec.tx(i).request, constraint) &&
          exec.missing_count(i) > k) {
        report.add_violation(
            msg::theorem7_hypothesis(i, exec.missing_count(i), k));
      }
    }
  } else {
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (unsafe(exec.tx(i).request, constraint)) {
        k = std::max(k, exec.missing_count(i));
      }
    }
  }
  const double bound = f(constraint, k);
  auto states = exec.actual_states();
  for (std::size_t si = 0; si < states.size(); ++si) {
    const double c = App::cost(states[si], constraint);
    if (c > bound + 1e-9) {
      report.add_violation(msg::theorem7_state(si, c, k, bound));
    }
  }
  return report;
}

/// Measured k for Theorem 7's hypothesis: the largest missing count over
/// transactions unsafe for `constraint` (0 if there are none).
template <core::Application App, class Unsafe>
std::size_t max_missing_over_unsafe(const core::Execution<App>& exec,
                                    int constraint, Unsafe&& unsafe) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (unsafe(exec.tx(i).request, constraint)) {
      k = std::max(k, exec.missing_count(i));
    }
  }
  return k;
}

/// A grouping of an execution for constraint i (section 5.2): a partition
/// of the indices into consecutive groups, each of which (a) is a singleton
/// whose transaction preserves the constraint's cost, or (b) ends at a
/// transaction whose *apparent* post-state has zero cost for the
/// constraint.
struct Grouping {
  /// groups[g] = {first index, last index} (inclusive), consecutive and
  /// covering 0..n-1.
  std::vector<std::pair<std::size_t, std::size_t>> groups;

  /// Indices of "normal states": the actual states reached after each
  /// group (state index g_end + 1 in the actual_states() vector).
  std::vector<std::size_t> normal_state_indices() const {
    std::vector<std::size_t> out;
    out.reserve(groups.size());
    for (const auto& [first, last] : groups) out.push_back(last + 1);
    return out;
  }
};

/// Greedy grouping construction: preserving transactions become singleton
/// groups; a run of others is closed at the first transaction whose
/// apparent post-state has zero cost. Returns nullopt when a trailing run
/// never closes (then no grouping of this execution exists along this
/// greedy path, e.g. requests keep arriving without compensating moves —
/// exactly the situation where the paper's Corollary 10 bound genuinely
/// does not apply).
template <core::Application App, class Preserves>
std::optional<Grouping> find_grouping(const core::Execution<App>& exec,
                                      int constraint, Preserves&& preserves) {
  Grouping g;
  std::size_t pos = 0;
  while (pos < exec.size()) {
    if (preserves(exec.tx(pos).request, constraint)) {
      g.groups.emplace_back(pos, pos);
      ++pos;
      continue;
    }
    std::optional<std::size_t> close;
    for (std::size_t end = pos; end < exec.size(); ++end) {
      typename App::State t_after = exec.apparent_state_after(end);
      if (App::cost(t_after, constraint) == 0.0) {
        close = end;
        break;
      }
    }
    if (!close.has_value()) return std::nullopt;
    g.groups.emplace_back(pos, *close);
    pos = *close + 1;
  }
  return g;
}

/// Theorem 9: "Let g be a grouping of e for constraint i ... Assume that all
/// transactions that preserve the cost of i, as well as all transactions
/// that occur at the ends of groups, are k-complete in e. Let s be any
/// normal state reachable in e. Then cost(s,i) <= f(k)."
template <core::Application App, class Preserves, class FBound>
CheckReport check_theorem9(const core::Execution<App>& exec,
                           const Grouping& grouping, int constraint,
                           Preserves&& preserves, FBound&& f,
                           std::optional<std::size_t> k_opt = std::nullopt) {
  CheckReport report("theorem 9 normal-state bound");
  // Measure (or verify) k over the hypothesis transactions.
  std::size_t k = k_opt.value_or(0);
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const bool relevant = preserves(exec.tx(i).request, constraint) ||
                          std::any_of(grouping.groups.begin(),
                                      grouping.groups.end(),
                                      [i](const auto& gr) {
                                        return gr.second == i;
                                      });
    if (!relevant) continue;
    if (k_opt.has_value()) {
      if (exec.missing_count(i) > k) {
        std::ostringstream os;
        os << "hypothesis fails: tx " << i << " misses "
           << exec.missing_count(i) << " > k=" << k;
        report.add_violation(os.str());
      }
    } else {
      k = std::max(k, exec.missing_count(i));
    }
  }
  const double bound = f(constraint, k);
  auto states = exec.actual_states();
  for (std::size_t ns : grouping.normal_state_indices()) {
    const double c = App::cost(states.at(ns), constraint);
    if (c > bound + 1e-9) {
      std::ostringstream os;
      os << "normal state " << ns << " has cost " << c << " > f(" << k
         << ")=" << bound;
      report.add_violation(os.str());
    }
  }
  return report;
}

/// The measured k used by check_theorem9 when none is supplied.
template <core::Application App, class Preserves>
std::size_t grouping_hypothesis_k(const core::Execution<App>& exec,
                                  const Grouping& grouping, int constraint,
                                  Preserves&& preserves) {
  std::size_t k = 0;
  std::vector<bool> is_end(exec.size(), false);
  for (const auto& [first, last] : grouping.groups) is_end[last] = true;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (preserves(exec.tx(i).request, constraint) || is_end[i]) {
      k = std::max(k, exec.missing_count(i));
    }
  }
  return k;
}

}  // namespace analysis
