// Serializability metrics over executions.
//
// The paper positions SHARD on a spectrum: "whereas serializability would
// guarantee that each transaction has total information about the effects
// of the preceding transactions, the SHARD system only guarantees that each
// transaction has partial information" — and argues for a "continuous
// flavor": small changes in available information, small perturbations in
// guarantees. These metrics make the spectrum measurable: an execution is
// serializable exactly when every transaction has a complete prefix
// (k == 0), and its *serializability distance* quantifies how far short of
// that it falls.
#pragma once

#include <cstddef>
#include <vector>

#include "core/execution.hpp"

namespace analysis {

/// In this model, an execution is (view-)serializable in the paper's sense
/// iff every transaction saw the complete prefix of its predecessors —
/// then apparent and actual states coincide throughout and the run is
/// literally a serial one in timestamp order.
template <core::Replicable App>
bool is_serializable(const core::Execution<App>& exec) {
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (exec.missing_count(i) != 0) return false;
  }
  return true;
}

/// Distance measures from serializability.
struct SerializabilityDistance {
  std::size_t transactions = 0;
  /// Transactions with incomplete prefixes.
  std::size_t incomplete = 0;
  /// Total missing (transaction, predecessor) pairs — the edit distance to
  /// a serializable execution in "missing observations".
  std::size_t total_missing_pairs = 0;
  /// Max missing count (the smallest k making the run k-complete).
  std::size_t max_k = 0;
  /// Fraction of transactions with complete prefixes.
  double complete_fraction = 1.0;
};

template <core::Replicable App>
SerializabilityDistance serializability_distance(
    const core::Execution<App>& exec) {
  SerializabilityDistance d;
  d.transactions = exec.size();
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const std::size_t k = exec.missing_count(i);
    if (k > 0) {
      ++d.incomplete;
      d.total_missing_pairs += k;
      if (k > d.max_k) d.max_k = k;
    }
  }
  d.complete_fraction =
      d.transactions == 0
          ? 1.0
          : 1.0 - static_cast<double>(d.incomplete) /
                      static_cast<double>(d.transactions);
  return d;
}

/// For Application types (decisions available): transactions whose outcome
/// actually DIFFERED from what a complete prefix would have produced — a
/// sharper measure than raw missing counts, since most missing information
/// is irrelevant to most decisions (the insight behind section 5.3's
/// witnesses). Returns the indices of such divergent transactions.
template <core::Application App>
std::vector<std::size_t> divergent_transactions(
    const core::Execution<App>& exec) {
  std::vector<std::size_t> out;
  typename App::State actual = App::initial();
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    if (exec.missing_count(i) > 0) {
      const core::DecisionResult<typename App::Update> would =
          App::decide(tx.request, actual);
      if (!(would.update == tx.update) ||
          would.external_actions != tx.external_actions) {
        out.push_back(i);
      }
    }
    App::apply(tx.update, actual);
  }
  return out;
}

}  // namespace analysis
