// Thrashing analysis (paper section 3.1, closing remark).
//
// "Notice that there is a danger of 'thrashing' in this system. If a
// MOVE-UP transaction does not see a previous request and corresponding
// MOVE-UP ... it may move another person Q to the assigned list. A later
// MOVE-DOWN ... might move Q down. Another MOVE-UP might then ... reassign
// Q ... This kind of thrashing is very undesirable, not just because of its
// obvious inefficiency, but because of the external effects of the
// conflicting transactions."
//
// Two thrashing metrics, matching the two harms the paper names:
//  * external-action oscillations — per subject, alternations between
//    opposing external actions (grant/rescind, promise/apologize, ...);
//    the customer-visible damage;
//  * engine churn — undo/redo counts from the replica engines; the
//    inefficiency. (Collected from EngineStats by the cluster.)
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/execution.hpp"

namespace analysis {

struct ThrashingReport {
  /// Total external actions emitted.
  std::size_t external_actions = 0;
  /// Opposing-action flips per subject summed: e.g. grant->rescind and
  /// rescind->grant transitions.
  std::size_t oscillations = 0;
  /// Subjects that received at least one opposing pair.
  std::size_t subjects_affected = 0;
  /// Worst per-subject flip count.
  std::size_t max_per_subject = 0;
};

/// Count oscillations between `positive_kind` and `negative_kind` external
/// actions per subject, in serial (timestamp) order of the emitting
/// transactions.
template <core::Application App>
ThrashingReport count_external_oscillations(const core::Execution<App>& exec,
                                            const std::string& positive_kind,
                                            const std::string& negative_kind) {
  ThrashingReport out;
  std::map<std::string, std::vector<bool>> per_subject;  // true = positive
  for (std::size_t i = 0; i < exec.size(); ++i) {
    for (const core::ExternalAction& a : exec.tx(i).external_actions) {
      ++out.external_actions;
      if (a.kind == positive_kind) {
        per_subject[a.subject].push_back(true);
      } else if (a.kind == negative_kind) {
        per_subject[a.subject].push_back(false);
      }
    }
  }
  for (const auto& [subject, seq] : per_subject) {
    std::size_t flips = 0;
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (seq[i] != seq[i - 1]) ++flips;
    }
    if (flips > 0) {
      ++out.subjects_affected;
      out.oscillations += flips;
      if (flips > out.max_per_subject) out.max_per_subject = flips;
    }
  }
  return out;
}

}  // namespace analysis
