// Globally unique timestamps and Lamport clocks.
//
// Paper section 1.2: "Transactions are totally ordered by a globally-unique
// timestamp assignment (such as one based on local timestamps with node
// identifiers used for tiebreaking), and each node uses this total ordering
// to determine how to merge information about different transactions."
//
// We implement exactly that: a Lamport logical clock per node, with the node
// id as tiebreak. A node advances its clock past every timestamp it merges,
// so a transaction's timestamp is strictly greater than the timestamp of
// every transaction in its prefix subsequence — which is what makes the
// prefix a subsequence of the *preceding* transactions (section 3.1,
// condition (1)).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/partition.hpp"

namespace core {

using sim::NodeId;

/// A globally unique, totally ordered transaction timestamp.
struct Timestamp {
  std::uint64_t logical = 0;  ///< Lamport counter value.
  NodeId node = 0;            ///< Origin node; tiebreak for global uniqueness.

  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;

  /// Hot-path total-order compare. The defaulted <=> above lowers to two
  /// dependent branches (compare logical, then maybe node); merge-position
  /// binary searches run this comparison O(log window) times per insert, so
  /// it is written branch-lean — both legs evaluate and combine with
  /// bitwise ops, which the compiler turns into straight-line cmp/setcc.
  /// Exact same order as the defaulted <=> ((logical, node) lexicographic);
  /// the other relational operators and == still come from <=>.
  friend constexpr bool operator<(const Timestamp& a,
                                  const Timestamp& b) noexcept {
    return static_cast<bool>(
        static_cast<unsigned>(a.logical < b.logical) |
        (static_cast<unsigned>(a.logical == b.logical) &
         static_cast<unsigned>(a.node < b.node)));
  }

  std::string to_string() const;
};

/// Per-node Lamport clock.
class LamportClock {
 public:
  explicit LamportClock(NodeId node) : node_(node) {}

  /// Advance and return a fresh timestamp for a locally initiated
  /// transaction. Strictly greater than every timestamp previously returned
  /// by or observed through this clock.
  Timestamp tick() {
    ++counter_;
    return Timestamp{counter_, node_};
  }

  /// Fold in a remote timestamp so future local timestamps exceed it.
  void observe(const Timestamp& ts) {
    if (ts.logical > counter_) counter_ = ts.logical;
  }

  NodeId node() const { return node_; }
  std::uint64_t counter() const { return counter_; }

 private:
  std::uint64_t counter_ = 0;
  NodeId node_;
};

}  // namespace core

template <>
struct std::hash<core::Timestamp> {
  std::size_t operator()(const core::Timestamp& ts) const noexcept {
    return std::hash<std::uint64_t>{}(ts.logical * 1000003ULL + ts.node);
  }
};
