#include "core/timestamp.hpp"

#include <sstream>

namespace core {

std::string Timestamp::to_string() const {
  std::ostringstream os;
  os << logical << "@n" << node;
  return os.str();
}

}  // namespace core
