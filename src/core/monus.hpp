// Truncated subtraction.
//
// Paper section 2.2: "We use the notation X -. Y to denote max(X-Y, 0)."
// Both airline cost functions are built from this operator, as are the
// banking and inventory analogues.
#pragma once

#include <algorithm>
#include <concepts>

namespace core {

/// max(x - y, 0) for signed integral types.
template <std::signed_integral T>
constexpr T monus(T x, T y) {
  return x > y ? x - y : T{0};
}

/// max(x - y, 0) for floating-point types.
template <std::floating_point T>
constexpr T monus(T x, T y) {
  return x > y ? x - y : T{0};
}

}  // namespace core
