// Interned prefix subsequences: O(#nodes) references to O(history) sets.
//
// The paper's section 3.3 leans on [BK]/[SKS]-style "optimized storage
// structures" to make timestamp-ordered merging practical. The analogous
// optimization on OUR hot path is the per-transaction prefix record: a
// decision's prefix subsequence (section 3.1) is the set of every update
// merged at the origin at decision time, which grows linearly with history —
// materializing it per submit makes a run O(n^2) in both time and retained
// timestamps.
//
// The key observation: a node merges exactly what the broadcast layer has
// delivered, and deliveries are per-origin sequence numbers. So the prefix
// set is fully determined by
//
//   * a per-origin count ("the first contiguous[o] broadcasts of origin o"),
//   * a small exception list for out-of-order holes (non-causal delivery
//     can deliver seq 7 before 5), and
//   * for serializable decisions, the reserved position: only predecessors
//     with timestamp < cut belong to the complete prefix.
//
// That is O(#nodes + #holes) per record instead of O(history). Analysis
// consumes it through `expand()`, which maps (origin, seq) pairs back to
// timestamps via a resolver (the cluster knows origin o's seq-th broadcast:
// it is o's (seq-1)-th originated record) — reported checker semantics are
// bit-identical to the explicit vectors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/timestamp.hpp"

namespace core {

/// Compact reference to a prefix subsequence. Equality is structural, which
/// is exactly set equality: contiguous counts are canonical and the
/// exception list is kept sorted by the producer.
struct PrefixRef {
  /// contiguous[o] = the first `contiguous[o]` broadcasts of origin o are
  /// all in the prefix.
  std::vector<std::uint64_t> contiguous;
  /// Delivered (origin, seq) pairs beyond contiguous[origin] — out-of-order
  /// holes under non-causal delivery. Sorted; empty in causal mode.
  std::vector<std::pair<NodeId, std::uint64_t>> extras;
  /// Serializable (complete-prefix) decisions: the reserved position. Only
  /// members with timestamp < *cut are in the prefix.
  std::optional<Timestamp> cut;

  /// Maps (origin, 1-based broadcast seq) to that broadcast's timestamp.
  using Resolver =
      std::function<Timestamp(NodeId origin, std::uint64_t origin_seq)>;

  /// Delivered timestamps recorded, before any cut filter. Equals the
  /// expanded size for ordinary (non-serializable) records.
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : contiguous) n += c;
    return n + extras.size();
  }

  /// Storage-footprint proxy: slots this reference retains, independent of
  /// how much history it denotes (the E20 RSS metric).
  std::size_t slots() const { return contiguous.size() + extras.size(); }

  /// Materialize the explicit timestamp set, ascending. This is the lazy
  /// half of the interning bargain: producers pay O(#nodes), and only the
  /// analysis layer ever pays O(|prefix|), once, here.
  std::vector<Timestamp> expand(const Resolver& resolve) const {
    std::vector<Timestamp> out;
    out.reserve(static_cast<std::size_t>(count()));
    for (std::size_t o = 0; o < contiguous.size(); ++o) {
      for (std::uint64_t s = 1; s <= contiguous[o]; ++s) {
        out.push_back(resolve(static_cast<NodeId>(o), s));
      }
    }
    for (const auto& [origin, seq] : extras) out.push_back(resolve(origin, seq));
    if (cut) {
      std::erase_if(out, [this](const Timestamp& t) { return !(t < *cut); });
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  friend bool operator==(const PrefixRef&, const PrefixRef&) = default;
};

}  // namespace core
