// Integrity-constraint cost accounting (paper section 2.2).
//
// Integrity constraints are indexed; each has a nonnegative real cost
// measure over states, zero exactly when the constraint holds. "One goal of
// SHARD is to minimize the cost of states that arise during an execution."
// This header provides per-state cost vectors and a running accumulator used
// by the analysis passes and bench tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace core {

/// Per-constraint costs of a single state.
using CostVector = std::vector<double>;

template <Application App>
CostVector cost_vector(const typename App::State& s) {
  CostVector v(static_cast<std::size_t>(App::kNumConstraints));
  for (int i = 0; i < App::kNumConstraints; ++i)
    v[static_cast<std::size_t>(i)] = App::cost(s, i);
  return v;
}

/// Running summary of costs over a sequence of states (e.g. all actual
/// states of an execution): per-constraint maximum, final value, and the
/// time-integral style sum used to compare runs in the bench tables.
class CostStats {
 public:
  explicit CostStats(std::size_t num_constraints)
      : max_(num_constraints, 0.0),
        last_(num_constraints, 0.0),
        sum_(num_constraints, 0.0) {}

  void observe(const CostVector& costs);

  std::size_t num_constraints() const { return max_.size(); }
  std::size_t states_observed() const { return count_; }

  double max_cost(std::size_t i) const { return max_.at(i); }
  double final_cost(std::size_t i) const { return last_.at(i); }
  /// Mean over observed states (a discrete "area under the cost curve").
  double mean_cost(std::size_t i) const;
  /// Max over constraints of max_cost.
  double max_total() const;

  std::string summary() const;

 private:
  CostVector max_;
  CostVector last_;
  CostVector sum_;
  std::size_t count_ = 0;
};

}  // namespace core

#include "core/execution.hpp"

namespace core {

template <Application App>
CostStats cost_stats_of_execution(const Execution<App>& exec) {
  CostStats stats(static_cast<std::size_t>(App::kNumConstraints));
  typename App::State s = App::initial();
  stats.observe(cost_vector<App>(s));
  for (const auto& tx : exec.transactions()) {
    App::apply(tx.update, s);
    stats.observe(cost_vector<App>(s));
  }
  return stats;
}

}  // namespace core
