#include "core/cost.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace core {

void CostStats::observe(const CostVector& costs) {
  if (costs.size() != max_.size()) {
    throw std::invalid_argument("CostStats: constraint count mismatch");
  }
  for (std::size_t i = 0; i < costs.size(); ++i) {
    max_[i] = std::max(max_[i], costs[i]);
    sum_[i] += costs[i];
    last_[i] = costs[i];
  }
  ++count_;
}

double CostStats::mean_cost(std::size_t i) const {
  return count_ == 0 ? 0.0 : sum_.at(i) / static_cast<double>(count_);
}

double CostStats::max_total() const {
  double m = 0.0;
  for (double v : max_) m = std::max(m, v);
  return m;
}

std::string CostStats::summary() const {
  std::ostringstream os;
  os << "costs over " << count_ << " states:";
  for (std::size_t i = 0; i < max_.size(); ++i) {
    os << " c" << i << "[max=" << max_[i] << ",mean=" << mean_cost(i)
       << ",final=" << last_[i] << "]";
  }
  return os.str();
}

}  // namespace core
