// Formal executions (paper section 3.1).
//
// "An execution of a set of transaction instances consists of a serial
// ordering T for the transaction instances, together with a sequence A of
// updates, a sequence E of sets of external actions, a sequence I of finite
// sequences of integers, and two sequences, s and t, of database states",
// subject to:
//   (1) I_i is a subsequence of the prefix {1, ..., i-1};
//   (2) t_i is the result of the updates designated by I_{i+1} applied to s0
//       (the *apparent* state T_{i+1} sees when its decision part runs);
//   (3) (A_i, E_i) = D_{T_i}(t_{i-1})  — update and external actions are
//       determined by the observed state;
//   (4) s_i is the result of A_1 ... A_i applied to s0 (the *actual* state).
//
// This file is the executable form of that object. Indices are 0-based in
// code; the class stores, per transaction instance: its timestamp, origin
// node, real (simulated) initiation time, the request that was submitted,
// the prefix subsequence actually seen, the update generated, and the
// external actions triggered. Apparent and actual states are derived on
// demand by replaying updates, exactly per (2) and (4).
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/model.hpp"
#include "core/timestamp.hpp"
#include "sim/delay.hpp"

namespace core {

/// One transaction instance in an execution's serial order.
template <Replicable App>
struct TxInstance {
  Timestamp ts;              ///< Global timestamp; defines the serial order.
  NodeId origin = 0;         ///< Node whose decision part ran.
  sim::Time real_time = 0.0; ///< Initiation time (timed executions, §3.2).
  typename App::Request request;      ///< What the client submitted.
  std::vector<std::size_t> prefix;    ///< Sorted indices of transactions seen.
  typename App::Update update;        ///< A_i, chosen by the decision part.
  std::vector<ExternalAction> external_actions;  ///< E_i.
};

/// An execution in the paper's sense, with derived-state queries.
template <Replicable App>
class Execution {
 public:
  using State = typename App::State;
  using Tx = TxInstance<App>;

  Execution() = default;
  explicit Execution(std::vector<Tx> txs) : txs_(std::move(txs)) {}

  /// Append the next transaction in serial order. The prefix must reference
  /// only earlier indices; it is sorted and deduplicated here.
  void append(Tx tx) {
    std::sort(tx.prefix.begin(), tx.prefix.end());
    tx.prefix.erase(std::unique(tx.prefix.begin(), tx.prefix.end()),
                    tx.prefix.end());
    if (!tx.prefix.empty() && tx.prefix.back() >= txs_.size()) {
      throw std::invalid_argument(
          "prefix subsequence references a non-preceding transaction");
    }
    txs_.push_back(std::move(tx));
  }

  std::size_t size() const { return txs_.size(); }
  bool empty() const { return txs_.empty(); }
  const Tx& tx(std::size_t i) const { return txs_.at(i); }
  const std::vector<Tx>& transactions() const { return txs_; }

  /// Result of applying the updates at `indices` (ascending) to s0.
  State state_of_subsequence(const std::vector<std::size_t>& indices) const {
    State s = App::initial();
    for (std::size_t idx : indices) App::apply(txs_.at(idx).update, s);
    return s;
  }

  /// Apparent state *before* transaction i: what its decision part saw
  /// (paper t_{i-1}; condition (2)).
  State apparent_state_before(std::size_t i) const {
    return state_of_subsequence(txs_.at(i).prefix);
  }

  /// Apparent state *after* transaction i: T_i(t, t) where t is the apparent
  /// state before (the state T_i "believes will exist after the update").
  State apparent_state_after(std::size_t i) const {
    State s = apparent_state_before(i);
    App::apply(txs_.at(i).update, s);
    return s;
  }

  /// Actual state before transaction i: A_0 ... A_{i-1} applied to s0
  /// (paper s_i for the 1-based i; condition (4)).
  State actual_state_before(std::size_t i) const {
    State s = App::initial();
    for (std::size_t j = 0; j < i; ++j) App::apply(txs_[j].update, s);
    return s;
  }

  /// Actual state after transaction i.
  State actual_state_after(std::size_t i) const {
    State s = actual_state_before(i);
    App::apply(txs_.at(i).update, s);
    return s;
  }

  /// All actual states s_0 ... s_n (n = size()), computed in one pass.
  /// s_0 is the initial state; s_{i+1} is the state after transaction i.
  std::vector<State> actual_states() const {
    std::vector<State> states;
    states.reserve(txs_.size() + 1);
    State s = App::initial();
    states.push_back(s);
    for (const Tx& tx : txs_) {
      App::apply(tx.update, s);
      states.push_back(s);
    }
    return states;
  }

  /// Final actual state.
  State final_state() const { return actual_state_before(txs_.size()); }

  /// Number of preceding transactions NOT seen by transaction i. Transaction
  /// i is k-complete (paper §3.2) iff missing_count(i) <= k.
  std::size_t missing_count(std::size_t i) const {
    return i - txs_.at(i).prefix.size();
  }

  /// Max over all transactions of missing_count — the smallest k for which
  /// the whole execution is k-complete.
  std::size_t max_missing() const {
    std::size_t k = 0;
    for (std::size_t i = 0; i < txs_.size(); ++i)
      k = std::max(k, missing_count(i));
    return k;
  }

  /// Truncate to the first n transactions (used by induction-style checks).
  Execution prefix_execution(std::size_t n) const {
    return Execution(std::vector<Tx>(txs_.begin(), txs_.begin() + n));
  }

 private:
  std::vector<Tx> txs_;
};

}  // namespace core
