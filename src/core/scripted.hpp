// Scripted (hand-built) executions.
//
// The paper's worked examples (the 206-transaction overbooking run of
// section 3.1, the section 5.4 duplicate-request counterexample, the
// section 5.5 fairness anomaly) specify, transaction by transaction,
// exactly which prefix subsequence each decision sees. ScriptedExecution
// lets tests and examples build such executions directly — no cluster, no
// nondeterminism: you give the request and the prefix; it computes the
// apparent state, runs the decision part (so condition (3) of section 3.1
// holds by construction), and appends the resulting transaction instance.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/execution.hpp"
#include "core/model.hpp"

namespace core {

template <Application App>
class ScriptedExecution {
 public:
  using Request = typename App::Request;

  /// Run `request` seeing exactly the transactions at `prefix` (ascending
  /// indices into the execution so far). Returns the new index.
  std::size_t run(const Request& request, std::vector<std::size_t> prefix,
                  NodeId origin = 0, double real_time = -1.0) {
    // Prefix updates apply in serial (index) order regardless of how the
    // caller listed them — condition (2) of section 3.1.
    std::sort(prefix.begin(), prefix.end());
    prefix.erase(std::unique(prefix.begin(), prefix.end()), prefix.end());
    TxInstance<App> tx;
    tx.ts = Timestamp{static_cast<std::uint64_t>(exec_.size()) + 1, origin};
    tx.origin = origin;
    tx.real_time = real_time >= 0.0
                       ? real_time
                       : static_cast<double>(exec_.size());
    tx.request = request;
    tx.prefix = std::move(prefix);
    const typename App::State apparent =
        exec_.state_of_subsequence(tx.prefix);
    DecisionResult<typename App::Update> decision =
        App::decide(request, apparent);
    tx.update = std::move(decision.update);
    tx.external_actions = std::move(decision.external_actions);
    exec_.append(std::move(tx));
    return exec_.size() - 1;
  }

  /// Run with the complete prefix {0, ..., size-1} — the serializable case.
  std::size_t run_complete(const Request& request, NodeId origin = 0,
                           double real_time = -1.0) {
    std::vector<std::size_t> prefix(exec_.size());
    std::iota(prefix.begin(), prefix.end(), 0);
    return run(request, std::move(prefix), origin, real_time);
  }

  /// Re-assign the prefix subsequence of an existing transaction (used by
  /// the section 3.2 example that repairs transitivity: REQUEST/CANCEL
  /// decisions don't depend on their prefix, so shrinking their prefixes
  /// leaves all updates unchanged). The caller must preserve condition (3);
  /// the execution checker will verify.
  void reassign_prefix(std::size_t index, std::vector<std::size_t> prefix) {
    std::vector<TxInstance<App>> txs = exec_.transactions();
    txs.at(index).prefix = std::move(prefix);
    exec_ = Execution<App>(std::move(txs));
  }

  const Execution<App>& execution() const { return exec_; }
  std::size_t size() const { return exec_.size(); }

 private:
  Execution<App> exec_;
};

}  // namespace core
