// The database / transaction model of paper section 2.
//
// A database is a set S of states with a distinguished well-formed initial
// state s0. A transaction T consists of a *decision part* D_T — a mapping
// from states to (update, set of external actions) — and the *update* it
// selects: a well-formedness-preserving mapping S -> S. The decision part
// runs exactly once, at the transaction's origin, against whatever state the
// origin node has merged so far; the update is broadcast and may be undone
// and redone many times against other states.
//
// An Application packages a concrete instance of this model (states,
// requests, decisions, updates, integrity-constraint costs) behind a static
// interface checked by the `Application` concept below. The SHARD engine,
// the execution model, and every analysis pass are generic over it.
#pragma once

#include <compare>
#include <concepts>
#include <string>
#include <vector>

namespace core {

/// An effect on the external world (paper section 1.2: e.g. "inform a
/// passenger that he has been assigned a seat"). External actions are
/// triggered only by decision parts, exactly once, at the origin node; they
/// can never be undone — which is the entire reason the decision/update
/// split exists.
struct ExternalAction {
  /// Action verb, e.g. "grant-seat", "rescind-seat", "overdraft-notice".
  std::string kind;
  /// Affected external entity, e.g. the passenger name.
  std::string subject;

  friend auto operator<=>(const ExternalAction&,
                          const ExternalAction&) = default;
};

/// What a decision part returns: the update to broadcast plus the external
/// actions triggered right now. A default-constructed Update must be a
/// no-op; decisions that "take no action" return exactly that.
template <class Update>
struct DecisionResult {
  Update update{};
  std::vector<ExternalAction> external_actions;
};

/// The state-machine core of an application: what the replication engine
/// (UpdateLog) and the execution model need. `Application` below refines
/// this with decisions and costs; the partial-replication extension uses
/// per-group state machines that satisfy only this part.
template <class A>
concept Replicable = requires(const typename A::State& s,
                              typename A::State& mutable_state,
                              const typename A::Update& u) {
  typename A::State;
  typename A::Update;
  typename A::Request;
  { A::initial() } -> std::same_as<typename A::State>;
  { A::well_formed(s) } -> std::convertible_to<bool>;
  { A::apply(u, mutable_state) } -> std::same_as<void>;
  requires std::equality_comparable<typename A::State>;
  requires std::default_initializable<typename A::Update>;
};

/// Compile-time contract for applications plugged into the framework.
///
/// Requirements beyond the syntactic ones below:
///  - `apply` must preserve well-formedness (paper: "an update is any mapping
///    from S to S which preserves well-formedness");
///  - `apply` must be deterministic and depend only on (update, state);
///  - `decide` must not mutate anything (decisions read, never write);
///  - `cost(s, i)` must be nonnegative, zero iff constraint i holds in s;
///  - State must be a regular type; equality is used by the convergence
///    checks (mutual consistency) and the analysis passes.
template <class A>
concept Application = requires(const typename A::State& s,
                               typename A::State& mutable_state,
                               const typename A::Update& u,
                               const typename A::Request& req) {
  typename A::State;
  typename A::Update;
  typename A::Request;
  { A::name() } -> std::convertible_to<std::string>;
  { A::initial() } -> std::same_as<typename A::State>;
  { A::well_formed(s) } -> std::convertible_to<bool>;
  { A::apply(u, mutable_state) } -> std::same_as<void>;
  { A::decide(req, s) } -> std::same_as<DecisionResult<typename A::Update>>;
  { A::kNumConstraints } -> std::convertible_to<int>;
  { A::cost(s, int{}) } -> std::convertible_to<double>;
  requires std::equality_comparable<typename A::State>;
  requires std::default_initializable<typename A::Update>;
};

/// Total cost of a state: sum over all constraints (paper section 2.2,
/// cost(s) = sum_i cost(s, i)).
template <Application App>
double total_cost(const typename App::State& s) {
  double sum = 0.0;
  for (int i = 0; i < App::kNumConstraints; ++i) sum += App::cost(s, i);
  return sum;
}

/// Apply a sequence of updates to a copy of `base` and return the result.
template <Application App>
typename App::State replay(const typename App::State& base,
                           const std::vector<typename App::Update>& updates) {
  typename App::State s = base;
  for (const auto& u : updates) App::apply(u, s);
  return s;
}

}  // namespace core
