// The deterministic backend: runtime::Executor / runtime::Transport over
// the existing discrete-event simulator.
//
// Every call forwards 1:1 to sim::Scheduler / sim::Network — same RNG draw
// order, same (time, seq) event order, same message ids — so a protocol
// ported onto the runtime interfaces produces byte-identical traces to the
// pre-runtime code for the same (seed, configuration). The only cost is a
// virtual dispatch per call; the differential tier in test_runtime pins the
// byte identity across the chaos and crash-chaos seeds.
#pragma once

#include "runtime/api.hpp"
#include "runtime/hooks.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace runtime {

class SimExecutor final : public Executor {
 public:
  explicit SimExecutor(sim::Scheduler& sched) : sched_(sched) {}

  Time now() const override { return sched_.now(); }
  TimerId schedule_at(Time t, Action action) override {
    return sched_.schedule_at(t, std::move(action));
  }
  TimerId schedule_after(Time dt, Action action) override {
    return sched_.schedule_after(dt, std::move(action));
  }
  bool cancel(TimerId id) override { return sched_.cancel(id); }
  void defer(Action action) override { sched_.defer(std::move(action)); }

  sim::Scheduler& scheduler() { return sched_; }

 private:
  sim::Scheduler& sched_;
};

class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Network& net) : net_(net) {}

  void register_node(NodeId node, Handler handler) override {
    net_.register_node(node, std::move(handler));
  }
  std::size_t node_count() const override { return net_.node_count(); }
  std::uint64_t send(NodeId src, NodeId dst, std::any payload) override {
    return net_.send(src, dst, std::move(payload));
  }
  std::size_t send_to_all(NodeId src, const std::any& payload) override {
    return net_.send_to_all(src, payload);
  }
  void set_node_down(NodeId node, bool down) override {
    net_.set_node_down(node, down);
  }
  bool node_down(NodeId node) const override { return net_.node_down(node); }

  sim::Network& network() { return net_; }

 private:
  sim::Network& net_;
};

/// The pair, plus the unified hook registration: set_hooks installs the
/// dispatch hook as the scheduler's observer and the fate hook as the
/// network's observer (the two legacy surfaces), reporting kNoWorker as
/// the dispatching worker — the simulator has no per-node workers.
class SimBackend {
 public:
  SimBackend(sim::Scheduler& sched, sim::Network& net)
      : exec_(sched), trans_(net) {}

  SimBackend(const SimBackend&) = delete;
  SimBackend& operator=(const SimBackend&) = delete;

  /// The simulator dispatches every node on one logical worker, so the
  /// same executor serves all nodes (the argument exists for signature
  /// parity with the threaded backend).
  Executor& executor(NodeId = 0) { return exec_; }
  Transport& transport() { return trans_; }

  void set_hooks(Hooks hooks) {
    hooks_ = std::move(hooks);
    if (hooks_.on_dispatch) {
      exec_.scheduler().set_observer([this](Time t, std::uint64_t id) {
        hooks_.on_dispatch(kNoWorker, t, id);
      });
    } else {
      exec_.scheduler().set_observer(nullptr);
    }
    if (hooks_.on_message_fate) {
      trans_.network().set_observer(
          [this](NodeId src, NodeId dst, std::uint64_t id, MessageFate fate) {
            hooks_.on_message_fate(src, dst, id, fate);
          });
    } else {
      trans_.network().set_observer(nullptr);
    }
  }
  const Hooks& hooks() const { return hooks_; }

 private:
  SimExecutor exec_;
  SimTransport trans_;
  Hooks hooks_;
};

}  // namespace runtime
