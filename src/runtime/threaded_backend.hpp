// The real-runtime backend: one worker thread per node, monotonic clocks,
// and an in-process message bus with seeded delay/drop injection.
//
// Where the simulator backend interleaves every node on one logical worker
// in deterministic (time, seq) order, this backend runs each node on its
// own OS thread against the real clock. The protocol code is identical —
// it sees only runtime::Executor / runtime::Transport — and stays
// thread-confined by construction:
//
//   * everything a node does runs as tasks on its own worker (timers it
//     schedules, messages addressed to it, work posted via post());
//   * the bus hands a message to the destination's worker queue after a
//     seeded uniform delay, so delivery-side work (handler, fate hook)
//     executes on the destination's thread;
//   * per-source RNG streams drive drop/delay draws, so fault injection
//     needs no locking on the send path.
//
// Runs are NOT deterministic (that is the point); correctness is checked
// post hoc — the driver (runtime::RealtimeCluster) merges the per-node
// trace shards and runs the full oracle stack plus the send/fate trace
// validator over the merged stream.
//
// Shutdown contract (the invariant the trace validator enforces): once
// drain_and_stop() begins, (1) new sends are refused BEFORE any fate is
// traced — so no kNetSend ever lacks its terminal fate — and (2) every
// message already on the bus is still delivered (or crash-dropped) before
// the workers join. Pending timers are discarded instead: they are the
// self-rescheduling periodic work (anti-entropy) that would otherwise keep
// the bus busy forever.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/hooks.hpp"
#include "sim/rng.hpp"

namespace runtime {

struct ThreadedConfig {
  std::size_t num_nodes = 3;
  /// Master seed for the per-source delay/drop RNG streams.
  std::uint64_t seed = 1;
  /// Uniform per-message bus delay bounds, in (real) seconds.
  double min_delay = 0.0002;
  double max_delay = 0.002;
  /// Per-send drop probability (anti-entropy repairs what this loses).
  double drop_probability = 0.0;
};

class ThreadedBackend;

/// Executor view of one worker: timers and deferred actions land on that
/// worker's queue, which is what keeps the owning node thread-confined.
class WorkerExecutor final : public Executor {
 public:
  WorkerExecutor(ThreadedBackend& backend, std::size_t worker)
      : backend_(backend), worker_(worker) {}

  Time now() const override;
  TimerId schedule_at(Time t, Action action) override;
  TimerId schedule_after(Time dt, Action action) override;
  bool cancel(TimerId id) override;
  void defer(Action action) override;

 private:
  ThreadedBackend& backend_;
  std::size_t worker_;
};

/// Transport view of the bus. send() must be called from the source's
/// worker thread (protocol code always does — sends happen inside tasks)
/// or from the main thread before start().
class ThreadedTransport final : public Transport {
 public:
  explicit ThreadedTransport(ThreadedBackend& backend) : backend_(backend) {}

  void register_node(NodeId node, Handler handler) override;
  std::size_t node_count() const override;
  std::uint64_t send(NodeId src, NodeId dst, std::any payload) override;
  std::size_t send_to_all(NodeId src, const std::any& payload) override;
  void set_node_down(NodeId node, bool down) override;
  bool node_down(NodeId node) const override;

 private:
  ThreadedBackend& backend_;
};

class ThreadedBackend {
 public:
  explicit ThreadedBackend(ThreadedConfig config);
  ~ThreadedBackend();

  ThreadedBackend(const ThreadedBackend&) = delete;
  ThreadedBackend& operator=(const ThreadedBackend&) = delete;

  /// The executor whose timers/deferred actions run on `node`'s worker.
  Executor& executor(NodeId node);
  Transport& transport() { return transport_; }

  /// Install the unified observation hooks. Must precede start():
  /// workers read the hook set without synchronization afterwards.
  void set_hooks(Hooks hooks);
  const Hooks& hooks() const { return hooks_; }

  /// Launch the worker threads. Tasks posted before start() (node start
  /// calls, pre-seeded timers) run once the workers come up.
  void start();

  /// Monotonic seconds since construction — the shared wall clock every
  /// worker stamps trace events with.
  Time now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Run `fn` as a task on `node`'s worker (thread-safe; callable from the
  /// main thread). This is how drivers submit work and take snapshots.
  void post(NodeId node, std::function<void()> fn);

  /// Refuse new sends, discard pending timers, deliver every message
  /// already on the bus, then join the workers. Idempotent. After this
  /// returns, per-node state can be read from any thread.
  void drain_and_stop();

  bool stopped() const { return stopped_; }
  std::size_t num_workers() const { return workers_.size(); }

 private:
  friend class WorkerExecutor;
  friend class ThreadedTransport;

  struct Task {
    Time due = 0.0;
    std::uint64_t seq = 0;  ///< global stamp: dispatch-hook id + tie-break
    enum class Kind : std::uint8_t { kTimer, kMessage, kImmediate } kind =
        Kind::kImmediate;
    std::function<void()> fn;
  };
  struct TaskLater {
    bool operator()(const Task& a, const Task& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::priority_queue<Task, std::vector<Task>, TaskLater> queue;
    /// Timer ids cancelled before firing; checked (and erased) at pop.
    std::unordered_set<std::uint64_t> cancelled;
    /// A task's fn is executing right now.
    bool running = false;
    /// Deferred actions staged by the CURRENTLY RUNNING task; drained by
    /// the owning thread right after the task's fn returns. Own-thread
    /// only — never locked.
    std::vector<Executor::Action> deferred;
    std::thread thread;
  };

  void worker_loop(std::size_t w);
  std::uint64_t post_task(std::size_t w, Time due, Task::Kind kind,
                          std::function<void()> fn);
  bool cancel_timer(std::size_t w, std::uint64_t id);
  void defer_on(std::size_t w, Executor::Action action);
  std::uint64_t send(NodeId src, NodeId dst, std::any payload);
  std::size_t send_to_all(NodeId src, const std::any& payload);
  void emit_fate(NodeId src, NodeId dst, std::uint64_t id, MessageFate fate);

  ThreadedConfig config_;
  ThreadedTransport transport_;
  Hooks hooks_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<WorkerExecutor>> executors_;
  /// Receive handlers + down flags, indexed by node. Registration is
  /// main-thread-only before start(); read without locks afterwards.
  std::vector<Transport::Handler> handlers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> down_;
  /// Per-source RNG streams (delay + drop draws); each is touched only by
  /// its source's worker.
  std::vector<sim::Rng> send_rngs_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> next_msg_id_{1};
  /// Messages accepted onto the bus whose delivery task has not finished.
  /// Incremented BEFORE the kSent fate, decremented AFTER the delivery
  /// task (fn + its deferred actions) completes — so "all workers idle and
  /// in_flight == 0" really means the bus is silent.
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace runtime
