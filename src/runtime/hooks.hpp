// Unified observation hooks for an execution backend.
//
// Before the runtime API, three ad-hoc observer surfaces grew side by side:
// the scheduler's dispatch observer, the network's message-fate observer,
// and the node-level shard::StreamObserver. Each had its own registration
// call and its own lifetime rules, and a driver wiring tracing had to know
// all three. runtime::Hooks folds them into one registration object handed
// to Backend::set_hooks() (and, for the typed stream observer, consumed by
// the cluster driver): both backends emit the same hook sequence for the
// same logical events, so a consumer written against Hooks works unchanged
// on the simulator and on the threaded runtime.
//
// Threading contract (threaded backend): on_dispatch fires on the worker
// that executed the task, on_message_fate fires on the worker that owns the
// event's program-order side (send-side fates on the source's worker,
// delivery-side fates on the destination's) — so a consumer that routes by
// node id into per-node shards has exactly one writer per shard. On the
// simulator everything fires on the driving thread, in the exact order the
// legacy observers fired.
#pragma once

#include <any>
#include <cstdint>
#include <functional>

#include "runtime/api.hpp"

namespace runtime {

struct Hooks {
  /// One call per executed dispatch (scheduler event / worker task), after
  /// the clock advanced to its time, before its action runs. `worker` is
  /// the executing worker's node id, or kNoWorker on the single-threaded
  /// simulator.
  using DispatchFn =
      std::function<void(NodeId worker, Time t, std::uint64_t id)>;
  /// One call per message outcome (a sent message that is later delivered
  /// reports twice: kSent, then kDelivered). `id` is 0 for send-time drops.
  using MessageFateFn = std::function<void(NodeId src, NodeId dst,
                                           std::uint64_t id, MessageFate fate)>;

  DispatchFn on_dispatch;
  MessageFateFn on_message_fate;
  /// The node-level stream observer (a shard::StreamObserver<App>*), type-
  /// erased because App is the driver's business: backends ignore it; the
  /// cluster driver casts it back and attaches it to every node. Empty =
  /// none.
  std::any stream_observer;
};

}  // namespace runtime
