// The execution API: what a SHARD node needs from the world it runs in.
//
// The protocol layers (net::ReliableBroadcast, shard::Node) are written
// against two narrow interfaces instead of the concrete simulator:
//
//   * Executor — time and timers: now(), schedule_at/after, cancel, and
//     defer() (run-at-end-of-current-dispatch, the hook the group-commit
//     batching uses to coalesce a burst).
//   * Transport — membership and datagrams: register a receive handler,
//     send to one peer or all, and the crash-fault hooks (set_node_down /
//     node_down) the network consults before delivering.
//
// Two backends implement them (see sim_backend.hpp / threaded_backend.hpp):
// the deterministic discrete-event simulator — still the test mode, with
// byte-identical traces to the pre-runtime code — and a threaded runtime
// with one worker per node, real monotonic clocks, and an in-process
// message bus. The same protocol code runs on both; only the driver
// differs (shard::Cluster vs runtime::RealtimeCluster).
//
// Layering: runtime reuses the simulator's value types (Time, NodeId,
// Message) rather than duplicating them — they are dependency-light PODs,
// and sharing them keeps the sim backend a zero-translation pass-through.
#pragma once

#include <any>
#include <cstdint>
#include <functional>

#include "sim/delay.hpp"
#include "sim/network.hpp"

namespace runtime {

using Time = sim::Time;
using NodeId = sim::NodeId;
using Message = sim::Message;
/// What became of one send attempt. Shared with the simulator's network —
/// both backends report the same taxonomy through the same hook.
using MessageFate = sim::Network::MessageFate;

/// Worker id reported by dispatch hooks when the backend has no per-node
/// workers (the single-threaded simulator dispatches everything on one
/// logical worker). Same raw value as obs::kControlNode, so drivers can
/// route such events to a control track without translating.
inline constexpr NodeId kNoWorker = 0xffffffffu;

/// Timers, deferred actions, and the clock — one per node on the threaded
/// backend (actions scheduled through a node's executor run on that node's
/// worker thread, which is what keeps Node code thread-confined), one
/// shared instance on the simulator.
class Executor {
 public:
  using Action = std::function<void()>;
  using TimerId = std::uint64_t;

  virtual ~Executor() = default;

  /// Current time in seconds: simulated time on the sim backend, monotonic
  /// seconds since backend start on the threaded one.
  virtual Time now() const = 0;

  /// Schedule `action` at absolute time `t` (>= now()).
  virtual TimerId schedule_at(Time t, Action action) = 0;

  /// Schedule `action` `dt` seconds from now.
  virtual TimerId schedule_after(Time dt, Action action) = 0;

  /// Cancel a pending timer. Returns false if it already ran (or was
  /// already cancelled).
  virtual bool cancel(TimerId id) = 0;

  /// Run `action` after the CURRENT dispatch finishes — same instant,
  /// before any queued work, no new timer identity. Called while nothing
  /// is dispatching, the action runs immediately. This is the batching
  /// layers' coalescing hook (stage during the action, flush at its end);
  /// both backends honor the stage/flush contract.
  virtual void defer(Action action) = 0;
};

/// Membership + unreliable datagrams. One instance serves the cluster;
/// each node registers a receive handler at construction.
class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  /// Register the receive handler for `node` (grows the node table). Must
  /// complete before any traffic flows — backends may read the handler
  /// table without locks afterwards.
  virtual void register_node(NodeId node, Handler handler) = 0;

  /// Number of registered nodes.
  virtual std::size_t node_count() const = 0;

  /// Send `payload` from src to dst. Returns the message id (unique per
  /// accepted send; 0 if the message was dropped at send time).
  virtual std::uint64_t send(NodeId src, NodeId dst, std::any payload) = 0;

  /// Broadcast to every registered node except src. Returns sends made.
  virtual std::size_t send_to_all(NodeId src, const std::any& payload) = 0;

  /// Mark a node crashed/restarted. While down the node neither sends nor
  /// receives (sends dropped at send time, in-flight messages at delivery
  /// time). Driven by the node's own crash()/restart().
  virtual void set_node_down(NodeId node, bool down) = 0;

  /// Is `node` currently marked down?
  virtual bool node_down(NodeId node) const = 0;
};

}  // namespace runtime
