// Post-hoc trace validation for backend runs.
//
// The shutdown contract of the threaded backend (threaded_backend.hpp) is
// that no send is ever traced without its terminal fate: a kNetSend either
// reaches kNetDeliver or kNetDropCrashed at the destination — never limbo.
// validate_message_fates checks exactly that over a merged trace stream.
// It holds on the simulator too (the network resolves every accepted send
// at delivery time), so the differential tests run it on both backends.
//
// Precondition: the stream is complete (no ring eviction) — an evicted
// kNetDeliver would read as a false orphan.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/event.hpp"

namespace runtime {

struct FateValidation {
  /// Accepted sends observed (kNetSend with a nonzero message id).
  std::uint64_t sends = 0;
  /// Terminal fates observed (delivery or delivery-time crash drop).
  std::uint64_t resolved = 0;
  /// Message ids with a kNetSend but no terminal fate.
  std::vector<std::uint64_t> orphaned;
  /// Message ids with a terminal fate but no preceding kNetSend.
  std::vector<std::uint64_t> unmatched;

  bool ok() const { return orphaned.empty() && unmatched.empty(); }
};

/// Scan a merged event stream and match every traced send to its terminal
/// fate. Send-time drops (id == 0) are terminal at the source and need no
/// matching; delivery-time crash drops carry the id and count as terminal.
FateValidation validate_message_fates(const std::vector<obs::Event>& events);

}  // namespace runtime
