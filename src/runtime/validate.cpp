#include "runtime/validate.hpp"

#include <unordered_set>

namespace runtime {

FateValidation validate_message_fates(const std::vector<obs::Event>& events) {
  FateValidation v;
  // kNetSend records at the source with b = message id (a = destination);
  // kNetDeliver / delivery-time kNetDropCrashed record at the destination
  // with b = the same id. Ids are unique per accepted send, so set
  // membership is the whole match.
  std::unordered_set<std::uint64_t> open;
  for (const obs::Event& e : events) {
    switch (e.type) {
      case obs::EventType::kNetSend:
        if (e.b == 0) break;  // send-time drop shape; not an accepted send
        ++v.sends;
        open.insert(e.b);
        break;
      case obs::EventType::kNetDeliver:
        ++v.resolved;
        if (open.erase(e.b) == 0) v.unmatched.push_back(e.b);
        break;
      case obs::EventType::kNetDropCrashed:
        if (e.b == 0) break;  // dropped at send time: terminal already
        ++v.resolved;
        if (open.erase(e.b) == 0) v.unmatched.push_back(e.b);
        break;
      default:
        break;
    }
  }
  v.orphaned.assign(open.begin(), open.end());
  return v;
}

}  // namespace runtime
