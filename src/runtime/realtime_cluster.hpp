// A SHARD cluster on the threaded backend: real threads, real clocks, and
// post-hoc checking.
//
// shard::Cluster is the deterministic driver (simulated time, byte-stable
// traces, checkers running against a reproducible run). RealtimeCluster is
// its wall-clock counterpart: the SAME Node/broadcast code, constructed
// against runtime::ThreadedBackend, one worker thread per node. Nothing
// here is deterministic, so the methodology inverts — instead of pinning
// traces, every run is validated after the fact:
//
//   * each node records into its own obs::ShardedTracer shard (exactly one
//     writer per shard: the node's worker); shutdown() merges the shards
//     by the shared atomic sequence stamp;
//   * the full oracle stack (convergence, prefix-subsequence condition,
//     transitivity, state == replay) runs over the assembled execution;
//   * runtime::validate_message_fates asserts the shutdown contract on the
//     merged trace — every traced send has its terminal fate.
//
// Interaction model: the driver thread posts work (submit) and polls for
// convergence with cross-thread snapshots (run_on round-trips); per-node
// state is only touched on that node's worker until shutdown() joins the
// workers, after which everything is plainly readable.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "net/broadcast.hpp"
#include "obs/event.hpp"
#include "obs/sharded_tracer.hpp"
#include "runtime/hooks.hpp"
#include "runtime/threaded_backend.hpp"
#include "runtime/validate.hpp"
#include "shard/node.hpp"
#include "sim/rng.hpp"

namespace runtime {

struct RealtimeConfig {
  std::size_t num_nodes = 3;
  std::uint64_t seed = 1;
  /// Broadcast options in REAL seconds — anti-entropy intervals that suit
  /// the simulator (0.5 s against ~1 ms delays) are far too lazy here;
  /// pick intervals a few times the bus delay.
  net::BroadcastOptions broadcast;
  ThreadedConfig bus;
  std::size_t checkpoint_interval = 32;
  /// Per-node trace ring capacity. The fate validator needs the complete
  /// stream, so size this above the expected event count.
  std::size_t ring_capacity = 1 << 16;
  /// Trace dispatch events too (noisy; fates and protocol events usually
  /// suffice for the validator and the checkers).
  bool trace_dispatch = false;
};

template <core::Application App,
          shard::LogLayout Layout = shard::LogLayout::kSoA>
class RealtimeCluster {
 public:
  using NodeT = shard::Node<App, Layout>;
  using Request = typename App::Request;

  explicit RealtimeCluster(RealtimeConfig config)
      : config_(std::move(config)),
        backend_([&] {
          ThreadedConfig bus = config_.bus;
          bus.num_nodes = config_.num_nodes;
          bus.seed = config_.seed;
          return bus;
        }()),
        tracer_(config_.num_nodes, config_.ring_capacity) {
    Hooks hooks;
    // One writer per shard: dispatch fires on the executing worker and
    // lands in that worker's shard; fates fire on the event's program-
    // order side (send-side at the source, delivery-side at the
    // destination) — the Hooks threading contract.
    if (config_.trace_dispatch) {
      hooks.on_dispatch = [this](NodeId worker, Time t, std::uint64_t id) {
        tracer_.shard(worker).record(obs::EventType::kSchedulerDispatch, t,
                                     worker, 0, 0, id);
      };
    }
    hooks.on_message_fate = [this](NodeId src, NodeId dst, std::uint64_t id,
                                   MessageFate fate) {
      const obs::EventType type = fate_event_type(fate);
      const bool at_dst = type == obs::EventType::kNetDeliver ||
                          (type == obs::EventType::kNetDropCrashed && id != 0);
      tracer_.shard(at_dst ? dst : src)
          .record(type, backend_.now(), at_dst ? dst : src, 0, 0,
                  at_dst ? src : dst, id);
    };
    backend_.set_hooks(std::move(hooks));
    sim::Rng master(config_.seed);
    master.fork_seed();  // parity with Cluster: first fork is the network's
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
      nodes_.push_back(std::make_unique<NodeT>(
          static_cast<core::NodeId>(i), backend_.executor(i),
          backend_.transport(), config_.num_nodes, config_.broadcast,
          config_.checkpoint_interval, master.fork_seed(),
          /*enable_compaction=*/false, &tracer_.shard(i)));
    }
    backend_.start();
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
      backend_.post(static_cast<NodeId>(i),
                    [n = nodes_[i].get()] { n->start(); });
    }
  }

  ~RealtimeCluster() { shutdown(); }

  /// Submit a request at `node` (asynchronously, on its worker). Rejected
  /// (the node is down) or executed; either way counted at the node.
  void submit(core::NodeId node, Request request) {
    backend_.post(node, [n = nodes_.at(node).get(), this,
                         request = std::move(request)] {
      n->try_submit(request, backend_.now());
    });
  }

  /// Crash / restart a node (posted to its worker, like every mutation).
  void crash(core::NodeId node) {
    backend_.post(node,
                  [n = nodes_.at(node).get(), this] { n->crash(backend_.now()); });
  }
  void restart(core::NodeId node) {
    // Snapshot the catch-up target on the DRIVER thread: a worker must
    // never block on a round-trip to itself. The target is recovery-window
    // instrumentation; a slightly stale total is harmless.
    const std::uint64_t target = snapshot_total_originated();
    backend_.post(node, [this, node, target] {
      nodes_[node]->restart(sim::RecoveryMode::kDurable, backend_.now(),
                            target, 1.0);
    });
  }

  /// Poll until every node knows every originated update, all states
  /// agree, and (if nonzero) the total matches `expect_originated`.
  /// Returns false on timeout.
  bool await_convergence(double timeout_s = 30.0,
                         std::uint64_t expect_originated = 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (converged_snapshot(expect_originated)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return converged_snapshot(expect_originated);
  }

  /// Drain the bus, join the workers. After this, all state is plainly
  /// readable from the calling thread. Idempotent.
  void shutdown() { backend_.drain_and_stop(); }

  // --- post-shutdown (or snapshot) inspection -----------------------------

  NodeT& node(core::NodeId i) { return *nodes_.at(i); }
  const NodeT& node(core::NodeId i) const { return *nodes_.at(i); }
  std::size_t num_nodes() const { return nodes_.size(); }
  ThreadedBackend& backend() { return backend_; }
  obs::ShardedTracer& tracer() { return tracer_; }

  std::uint64_t total_originated() const {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) total += n->originated().size();
    return total;
  }

  bool converged() const {
    const std::uint64_t total = total_originated();
    for (const auto& n : nodes_) {
      if (n->updates_known() != total) return false;
    }
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (!(nodes_[i]->state() == nodes_[0]->state())) return false;
    }
    return true;
  }

  core::PrefixRef::Resolver prefix_resolver() const {
    return [this](core::NodeId origin, std::uint64_t origin_seq) {
      return nodes_.at(origin)->originated().at(origin_seq - 1).ts;
    };
  }

  /// Assemble the formal execution — identical shape to
  /// shard::Cluster::execution(), so the whole analysis stack applies.
  core::Execution<App> execution() const {
    std::map<core::Timestamp, const typename NodeT::Record*> by_ts;
    for (const auto& n : nodes_) {
      for (const auto& rec : n->originated()) by_ts.emplace(rec.ts, &rec);
    }
    std::map<core::Timestamp, std::size_t> index_of;
    std::size_t next = 0;
    for (const auto& [ts, rec] : by_ts) index_of.emplace(ts, next++);
    const core::PrefixRef::Resolver resolve = prefix_resolver();
    core::Execution<App> exec;
    for (const auto& [ts, rec] : by_ts) {
      core::TxInstance<App> tx;
      tx.ts = rec->ts;
      tx.origin = rec->origin;
      tx.real_time = rec->real_time;
      tx.request = rec->request;
      tx.update = rec->update;
      tx.external_actions = rec->external_actions;
      const std::vector<core::Timestamp> pts = rec->prefix.expand(resolve);
      tx.prefix.reserve(pts.size());
      for (const core::Timestamp& p : pts) tx.prefix.push_back(index_of.at(p));
      exec.append(std::move(tx));
    }
    return exec;
  }

  /// The merged trace (per-node shards interleaved by the shared stamp).
  std::vector<obs::Event> trace() const { return tracer_.ring(); }

  /// The shutdown-contract check over the merged trace.
  FateValidation validate_fates() const {
    return validate_message_fates(trace());
  }

 private:
  /// Cross-thread snapshot helper: run `fn` on node i's worker and wait
  /// for the result. After shutdown the workers are gone and everything
  /// is quiescent, so call inline.
  template <class F>
  auto run_on(core::NodeId i, F fn) {
    if (backend_.stopped()) return fn();
    std::promise<decltype(fn())> done;
    auto fut = done.get_future();
    backend_.post(i, [&done, &fn] { done.set_value(fn()); });
    return fut.get();
  }

  std::uint64_t snapshot_total_originated() {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      total += run_on(static_cast<core::NodeId>(i), [this, i] {
        return static_cast<std::uint64_t>(nodes_[i]->originated().size());
      });
    }
    return total;
  }

  bool converged_snapshot(std::uint64_t expect_originated) {
    using State = typename App::State;
    const std::size_t n = nodes_.size();
    std::vector<std::uint64_t> originated(n), known(n);
    std::vector<State> states;
    states.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto snap = run_on(static_cast<core::NodeId>(i), [this, i] {
        return std::make_tuple(
            static_cast<std::uint64_t>(nodes_[i]->originated().size()),
            nodes_[i]->updates_known(), State(nodes_[i]->state()));
      });
      originated[i] = std::get<0>(snap);
      known[i] = std::get<1>(snap);
      states.push_back(std::move(std::get<2>(snap)));
    }
    std::uint64_t total = 0;
    for (const std::uint64_t o : originated) total += o;
    if (expect_originated != 0 && total != expect_originated) return false;
    for (const std::uint64_t k : known) {
      if (k != total) return false;
    }
    for (std::size_t i = 1; i < n; ++i) {
      if (!(states[i] == states[0])) return false;
    }
    return true;
  }

  static obs::EventType fate_event_type(MessageFate fate) {
    switch (fate) {
      case MessageFate::kSent:
        return obs::EventType::kNetSend;
      case MessageFate::kDelivered:
        return obs::EventType::kNetDeliver;
      case MessageFate::kDroppedPartition:
        return obs::EventType::kNetDropPartition;
      case MessageFate::kDroppedRandom:
        return obs::EventType::kNetDropRandom;
      case MessageFate::kDroppedCrashed:
        return obs::EventType::kNetDropCrashed;
    }
    return obs::EventType::kNetSend;  // unreachable
  }

  RealtimeConfig config_;
  ThreadedBackend backend_;
  obs::ShardedTracer tracer_;
  std::vector<std::unique_ptr<NodeT>> nodes_;
};

}  // namespace runtime
