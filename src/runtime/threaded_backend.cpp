#include "runtime/threaded_backend.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace runtime {

// --- WorkerExecutor --------------------------------------------------------

Time WorkerExecutor::now() const { return backend_.now(); }

Executor::TimerId WorkerExecutor::schedule_at(Time t, Action action) {
  return backend_.post_task(worker_, t, ThreadedBackend::Task::Kind::kTimer,
                            std::move(action));
}

Executor::TimerId WorkerExecutor::schedule_after(Time dt, Action action) {
  return schedule_at(backend_.now() + dt, std::move(action));
}

bool WorkerExecutor::cancel(TimerId id) {
  return backend_.cancel_timer(worker_, id);
}

void WorkerExecutor::defer(Action action) {
  backend_.defer_on(worker_, std::move(action));
}

// --- ThreadedTransport -----------------------------------------------------

void ThreadedTransport::register_node(NodeId node, Handler handler) {
  if (backend_.started_) {
    throw std::logic_error("register_node after start()");
  }
  const std::size_t i = static_cast<std::size_t>(node);
  if (i >= backend_.handlers_.size()) {
    throw std::out_of_range("register_node: no worker for node");
  }
  backend_.handlers_[i] = std::move(handler);
}

std::size_t ThreadedTransport::node_count() const {
  return backend_.handlers_.size();
}

std::uint64_t ThreadedTransport::send(NodeId src, NodeId dst,
                                      std::any payload) {
  return backend_.send(src, dst, std::move(payload));
}

std::size_t ThreadedTransport::send_to_all(NodeId src,
                                           const std::any& payload) {
  return backend_.send_to_all(src, payload);
}

void ThreadedTransport::set_node_down(NodeId node, bool down) {
  backend_.down_.at(static_cast<std::size_t>(node))
      ->store(down, std::memory_order_release);
}

bool ThreadedTransport::node_down(NodeId node) const {
  return backend_.down_.at(static_cast<std::size_t>(node))
      ->load(std::memory_order_acquire);
}

// --- ThreadedBackend -------------------------------------------------------

ThreadedBackend::ThreadedBackend(ThreadedConfig config)
    : config_(config),
      transport_(*this),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.num_nodes == 0) throw std::invalid_argument("no nodes");
  if (config_.max_delay < config_.min_delay) {
    throw std::invalid_argument("max_delay < min_delay");
  }
  handlers_.resize(config_.num_nodes);
  sim::Rng master(config_.seed);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    executors_.push_back(std::make_unique<WorkerExecutor>(*this, i));
    down_.push_back(std::make_unique<std::atomic<bool>>(false));
    send_rngs_.emplace_back(master.fork_seed());
  }
}

ThreadedBackend::~ThreadedBackend() { drain_and_stop(); }

Executor& ThreadedBackend::executor(NodeId node) {
  return *executors_.at(static_cast<std::size_t>(node));
}

void ThreadedBackend::set_hooks(Hooks hooks) {
  if (started_) throw std::logic_error("set_hooks after start()");
  hooks_ = std::move(hooks);
}

void ThreadedBackend::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

void ThreadedBackend::post(NodeId node, std::function<void()> fn) {
  post_task(static_cast<std::size_t>(node), now(), Task::Kind::kImmediate,
            std::move(fn));
}

std::uint64_t ThreadedBackend::post_task(std::size_t w, Time due,
                                         Task::Kind kind,
                                         std::function<void()> fn) {
  Worker& wk = *workers_.at(w);
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(wk.mu);
    wk.queue.push(Task{due, seq, kind, std::move(fn)});
  }
  wk.cv.notify_all();
  return seq;
}

bool ThreadedBackend::cancel_timer(std::size_t w, std::uint64_t id) {
  Worker& wk = *workers_.at(w);
  std::lock_guard<std::mutex> lk(wk.mu);
  // The queue is not indexable; mark the id and let the pop discard it.
  // Double-cancel / cancel-after-fire both return false via the marker's
  // absence only when the id already popped unmarked — track fired ids is
  // overkill for the protocol's usage (periodic timers are never
  // cancelled twice), so: report success iff not already marked.
  return wk.cancelled.insert(id).second;
}

void ThreadedBackend::defer_on(std::size_t w, Executor::Action action) {
  Worker& wk = *workers_.at(w);
  if (wk.thread.get_id() == std::this_thread::get_id()) {
    // Own worker mid-task: stage onto the deferred list, drained right
    // after the current fn returns — the group-commit coalescing hook.
    // Own-thread only, so no lock.
    wk.deferred.push_back(std::move(action));
    return;
  }
  // Foreign thread (driver): nothing is dispatching on the caller, so the
  // closest honest semantics is "run asap on the owning worker".
  post_task(w, now(), Task::Kind::kImmediate, std::move(action));
}

std::uint64_t ThreadedBackend::send(NodeId src, NodeId dst,
                                    std::any payload) {
  // Shutdown: refuse BEFORE tracing anything, so no kNetSend is ever left
  // without a terminal fate (the trace validator asserts this).
  if (draining_.load(std::memory_order_acquire)) return 0;
  const std::size_t s = static_cast<std::size_t>(src);
  if (s >= workers_.size() || static_cast<std::size_t>(dst) >= workers_.size()) {
    throw std::out_of_range("send: no such node");
  }
  if (down_[s]->load(std::memory_order_acquire)) {
    emit_fate(src, dst, 0, MessageFate::kDroppedCrashed);
    return 0;
  }
  // Per-source stream: only src's worker draws from it, no lock needed.
  sim::Rng& rng = send_rngs_[s];
  if (config_.drop_probability > 0.0 &&
      rng.bernoulli(config_.drop_probability)) {
    emit_fate(src, dst, 0, MessageFate::kDroppedRandom);
    return 0;
  }
  const double delay = rng.uniform(config_.min_delay, config_.max_delay);
  const std::uint64_t id =
      next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  // Count the message BEFORE its kSent becomes visible: drain_and_stop's
  // "bus is silent" check must never observe a traced send it isn't
  // waiting for.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  emit_fate(src, dst, id, MessageFate::kSent);
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.id = id;
  msg.payload = std::move(payload);
  post_task(
      static_cast<std::size_t>(dst), now() + delay, Task::Kind::kMessage,
      [this, msg = std::move(msg)]() mutable {
        // Delivery-side: runs on dst's worker. Crash drops here carry the
        // message id — the message travelled (mirrors the simulator).
        if (down_[static_cast<std::size_t>(msg.dst)]->load(
                std::memory_order_acquire)) {
          emit_fate(msg.src, msg.dst, msg.id, MessageFate::kDroppedCrashed);
          return;
        }
        emit_fate(msg.src, msg.dst, msg.id, MessageFate::kDelivered);
        handlers_[static_cast<std::size_t>(msg.dst)](msg);
      });
  return id;
}

std::size_t ThreadedBackend::send_to_all(NodeId src,
                                         const std::any& payload) {
  std::size_t sent = 0;
  for (std::size_t i = 0; i < handlers_.size(); ++i) {
    const NodeId dst = static_cast<NodeId>(i);
    if (dst == src) continue;
    send(src, dst, payload);
    ++sent;
  }
  return sent;
}

void ThreadedBackend::emit_fate(NodeId src, NodeId dst, std::uint64_t id,
                                MessageFate fate) {
  if (hooks_.on_message_fate) hooks_.on_message_fate(src, dst, id, fate);
}

void ThreadedBackend::worker_loop(std::size_t w) {
  Worker& wk = *workers_[w];
  std::unique_lock<std::mutex> lk(wk.mu);
  for (;;) {
    // Find the next runnable task (or exit).
    if (stop_.load(std::memory_order_acquire)) return;
    if (wk.queue.empty()) {
      wk.cv.wait(lk);
      continue;
    }
    const Task& top = wk.queue.top();
    if (top.kind == Task::Kind::kTimer) {
      if (wk.cancelled.count(top.seq) != 0) {
        wk.cancelled.erase(top.seq);
        wk.queue.pop();
        continue;
      }
      if (draining_.load(std::memory_order_acquire)) {
        // Draining discards pending timers regardless of due time — they
        // are the self-rescheduling periodic work that would keep the bus
        // alive forever.
        wk.queue.pop();
        continue;
      }
    }
    const Time due = top.due;
    const Time t_now = now();
    if (due > t_now) {
      wk.cv.wait_for(lk, std::chrono::duration<double>(due - t_now));
      continue;
    }
    Task task = std::move(const_cast<Task&>(wk.queue.top()));
    wk.queue.pop();
    wk.running = true;
    lk.unlock();

    if (hooks_.on_dispatch) {
      hooks_.on_dispatch(static_cast<NodeId>(w), now(), task.seq);
    }
    task.fn();
    // Drain deferred actions staged by the task (index-based: an action
    // may stage more). Runs on the owning thread before the task counts
    // as finished — same stage/flush contract as the simulator.
    for (std::size_t i = 0; i < wk.deferred.size(); ++i) {
      Executor::Action a = std::move(wk.deferred[i]);
      a();
    }
    wk.deferred.clear();
    if (task.kind == Task::Kind::kMessage) {
      // The message only stops counting once its handler (and everything
      // the handler deferred) ran — any sends it made are already counted.
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }

    lk.lock();
    wk.running = false;
  }
}

void ThreadedBackend::drain_and_stop() {
  if (stopped_) return;
  stopped_ = true;
  if (!started_) return;
  draining_.store(true, std::memory_order_release);
  for (auto& wk : workers_) {
    {
      std::lock_guard<std::mutex> lk(wk->mu);
    }
    wk->cv.notify_all();
  }
  // Quiesce: all queues empty, nothing running, nothing on the bus. Sends
  // only happen inside running tasks and draining_ refuses new ones, so
  // once this predicate holds it holds forever. Cross-worker work transfer
  // is exactly the kMessage tasks, each counted in in_flight_ from before
  // its kSent fate until after its handler finishes — so a message posted
  // to an already-scanned worker cannot slip past the scan.
  for (;;) {
    bool idle = in_flight_.load(std::memory_order_acquire) == 0;
    if (idle) {
      for (auto& wk : workers_) {
        std::lock_guard<std::mutex> lk(wk->mu);
        bool queue_live = false;
        // Pending kTimer tasks will be discarded by the worker; anything
        // else still has to run.
        if (!wk->queue.empty()) queue_live = true;
        if (wk->running || queue_live) {
          idle = false;
          wk->cv.notify_all();
          break;
        }
      }
    }
    if (idle && in_flight_.load(std::memory_order_acquire) == 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop_.store(true, std::memory_order_release);
  for (auto& wk : workers_) {
    {
      std::lock_guard<std::mutex> lk(wk->mu);
    }
    wk->cv.notify_all();
  }
  for (auto& wk : workers_) {
    if (wk->thread.joinable()) wk->thread.join();
  }
}

}  // namespace runtime
