# Empty compiler generated dependencies file for name_service.
# This may be replaced when dependencies are built.
