# Empty compiler generated dependencies file for banking_audit.
# This may be replaced when dependencies are built.
