file(REMOVE_RECURSE
  "CMakeFiles/banking_audit.dir/banking_audit.cpp.o"
  "CMakeFiles/banking_audit.dir/banking_audit.cpp.o.d"
  "banking_audit"
  "banking_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
