file(REMOVE_RECURSE
  "CMakeFiles/airline_partition.dir/airline_partition.cpp.o"
  "CMakeFiles/airline_partition.dir/airline_partition.cpp.o.d"
  "airline_partition"
  "airline_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airline_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
