# Empty dependencies file for airline_partition.
# This may be replaced when dependencies are built.
