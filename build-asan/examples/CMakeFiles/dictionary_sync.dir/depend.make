# Empty dependencies file for dictionary_sync.
# This may be replaced when dependencies are built.
