file(REMOVE_RECURSE
  "CMakeFiles/dictionary_sync.dir/dictionary_sync.cpp.o"
  "CMakeFiles/dictionary_sync.dir/dictionary_sync.cpp.o.d"
  "dictionary_sync"
  "dictionary_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionary_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
