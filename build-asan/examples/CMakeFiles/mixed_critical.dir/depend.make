# Empty dependencies file for mixed_critical.
# This may be replaced when dependencies are built.
