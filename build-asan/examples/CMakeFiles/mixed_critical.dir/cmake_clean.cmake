file(REMOVE_RECURSE
  "CMakeFiles/mixed_critical.dir/mixed_critical.cpp.o"
  "CMakeFiles/mixed_critical.dir/mixed_critical.cpp.o.d"
  "mixed_critical"
  "mixed_critical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_critical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
