file(REMOVE_RECURSE
  "CMakeFiles/sharded_bank.dir/sharded_bank.cpp.o"
  "CMakeFiles/sharded_bank.dir/sharded_bank.cpp.o.d"
  "sharded_bank"
  "sharded_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
