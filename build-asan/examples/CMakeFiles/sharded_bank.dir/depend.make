# Empty dependencies file for sharded_bank.
# This may be replaced when dependencies are built.
