file(REMOVE_RECURSE
  "../bench/e10_substrate_perf"
  "../bench/e10_substrate_perf.pdb"
  "CMakeFiles/e10_substrate_perf.dir/e10_substrate_perf.cpp.o"
  "CMakeFiles/e10_substrate_perf.dir/e10_substrate_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_substrate_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
