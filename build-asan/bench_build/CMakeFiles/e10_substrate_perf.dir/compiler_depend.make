# Empty compiler generated dependencies file for e10_substrate_perf.
# This may be replaced when dependencies are built.
