# Empty compiler generated dependencies file for e14_mixed_mode.
# This may be replaced when dependencies are built.
