file(REMOVE_RECURSE
  "../bench/e14_mixed_mode"
  "../bench/e14_mixed_mode.pdb"
  "CMakeFiles/e14_mixed_mode.dir/e14_mixed_mode.cpp.o"
  "CMakeFiles/e14_mixed_mode.dir/e14_mixed_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_mixed_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
