# Empty dependencies file for e11_other_apps.
# This may be replaced when dependencies are built.
