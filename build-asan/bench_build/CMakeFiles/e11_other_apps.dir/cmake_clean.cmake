file(REMOVE_RECURSE
  "../bench/e11_other_apps"
  "../bench/e11_other_apps.pdb"
  "CMakeFiles/e11_other_apps.dir/e11_other_apps.cpp.o"
  "CMakeFiles/e11_other_apps.dir/e11_other_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_other_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
