file(REMOVE_RECURSE
  "../bench/e15_broadcast_ablation"
  "../bench/e15_broadcast_ablation.pdb"
  "CMakeFiles/e15_broadcast_ablation.dir/e15_broadcast_ablation.cpp.o"
  "CMakeFiles/e15_broadcast_ablation.dir/e15_broadcast_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_broadcast_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
