# Empty dependencies file for e15_broadcast_ablation.
# This may be replaced when dependencies are built.
