# Empty compiler generated dependencies file for e6_counterexample.
# This may be replaced when dependencies are built.
