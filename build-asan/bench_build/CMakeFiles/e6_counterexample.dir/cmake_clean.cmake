file(REMOVE_RECURSE
  "../bench/e6_counterexample"
  "../bench/e6_counterexample.pdb"
  "CMakeFiles/e6_counterexample.dir/e6_counterexample.cpp.o"
  "CMakeFiles/e6_counterexample.dir/e6_counterexample.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
