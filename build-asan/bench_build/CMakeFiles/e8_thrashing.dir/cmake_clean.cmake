file(REMOVE_RECURSE
  "../bench/e8_thrashing"
  "../bench/e8_thrashing.pdb"
  "CMakeFiles/e8_thrashing.dir/e8_thrashing.cpp.o"
  "CMakeFiles/e8_thrashing.dir/e8_thrashing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_thrashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
