# Empty compiler generated dependencies file for e8_thrashing.
# This may be replaced when dependencies are built.
