file(REMOVE_RECURSE
  "../bench/e3_underbooking_grouping"
  "../bench/e3_underbooking_grouping.pdb"
  "CMakeFiles/e3_underbooking_grouping.dir/e3_underbooking_grouping.cpp.o"
  "CMakeFiles/e3_underbooking_grouping.dir/e3_underbooking_grouping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_underbooking_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
