# Empty compiler generated dependencies file for e3_underbooking_grouping.
# This may be replaced when dependencies are built.
