# Empty dependencies file for e9_probabilistic_bounds.
# This may be replaced when dependencies are built.
