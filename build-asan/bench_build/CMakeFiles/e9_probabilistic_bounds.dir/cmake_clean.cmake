file(REMOVE_RECURSE
  "../bench/e9_probabilistic_bounds"
  "../bench/e9_probabilistic_bounds.pdb"
  "CMakeFiles/e9_probabilistic_bounds.dir/e9_probabilistic_bounds.cpp.o"
  "CMakeFiles/e9_probabilistic_bounds.dir/e9_probabilistic_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_probabilistic_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
