file(REMOVE_RECURSE
  "../bench/e5_centralization"
  "../bench/e5_centralization.pdb"
  "CMakeFiles/e5_centralization.dir/e5_centralization.cpp.o"
  "CMakeFiles/e5_centralization.dir/e5_centralization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_centralization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
