# Empty dependencies file for e5_centralization.
# This may be replaced when dependencies are built.
