file(REMOVE_RECURSE
  "../bench/e12_availability"
  "../bench/e12_availability.pdb"
  "CMakeFiles/e12_availability.dir/e12_availability.cpp.o"
  "CMakeFiles/e12_availability.dir/e12_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
