# Empty dependencies file for e12_availability.
# This may be replaced when dependencies are built.
