# Empty dependencies file for e2_overbooking_invariant.
# This may be replaced when dependencies are built.
