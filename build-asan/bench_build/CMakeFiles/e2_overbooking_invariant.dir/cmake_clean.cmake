file(REMOVE_RECURSE
  "../bench/e2_overbooking_invariant"
  "../bench/e2_overbooking_invariant.pdb"
  "CMakeFiles/e2_overbooking_invariant.dir/e2_overbooking_invariant.cpp.o"
  "CMakeFiles/e2_overbooking_invariant.dir/e2_overbooking_invariant.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_overbooking_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
