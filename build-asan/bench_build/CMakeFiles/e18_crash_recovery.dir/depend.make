# Empty dependencies file for e18_crash_recovery.
# This may be replaced when dependencies are built.
