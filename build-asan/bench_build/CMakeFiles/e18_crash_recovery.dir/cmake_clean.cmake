file(REMOVE_RECURSE
  "../bench/e18_crash_recovery"
  "../bench/e18_crash_recovery.pdb"
  "CMakeFiles/e18_crash_recovery.dir/e18_crash_recovery.cpp.o"
  "CMakeFiles/e18_crash_recovery.dir/e18_crash_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e18_crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
