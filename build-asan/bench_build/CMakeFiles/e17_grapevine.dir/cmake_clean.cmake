file(REMOVE_RECURSE
  "../bench/e17_grapevine"
  "../bench/e17_grapevine.pdb"
  "CMakeFiles/e17_grapevine.dir/e17_grapevine.cpp.o"
  "CMakeFiles/e17_grapevine.dir/e17_grapevine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e17_grapevine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
