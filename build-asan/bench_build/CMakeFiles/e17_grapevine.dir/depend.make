# Empty dependencies file for e17_grapevine.
# This may be replaced when dependencies are built.
