file(REMOVE_RECURSE
  "../bench/e1_step_bounds"
  "../bench/e1_step_bounds.pdb"
  "CMakeFiles/e1_step_bounds.dir/e1_step_bounds.cpp.o"
  "CMakeFiles/e1_step_bounds.dir/e1_step_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_step_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
