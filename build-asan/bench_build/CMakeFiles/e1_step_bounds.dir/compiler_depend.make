# Empty compiler generated dependencies file for e1_step_bounds.
# This may be replaced when dependencies are built.
