file(REMOVE_RECURSE
  "../bench/e16_compaction"
  "../bench/e16_compaction.pdb"
  "CMakeFiles/e16_compaction.dir/e16_compaction.cpp.o"
  "CMakeFiles/e16_compaction.dir/e16_compaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e16_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
