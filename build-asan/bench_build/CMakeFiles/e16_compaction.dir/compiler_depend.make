# Empty compiler generated dependencies file for e16_compaction.
# This may be replaced when dependencies are built.
