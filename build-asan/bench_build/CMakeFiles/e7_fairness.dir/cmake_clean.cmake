file(REMOVE_RECURSE
  "../bench/e7_fairness"
  "../bench/e7_fairness.pdb"
  "CMakeFiles/e7_fairness.dir/e7_fairness.cpp.o"
  "CMakeFiles/e7_fairness.dir/e7_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
