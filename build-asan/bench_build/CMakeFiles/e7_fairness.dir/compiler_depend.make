# Empty compiler generated dependencies file for e7_fairness.
# This may be replaced when dependencies are built.
