# Empty compiler generated dependencies file for e13_partial_replication.
# This may be replaced when dependencies are built.
