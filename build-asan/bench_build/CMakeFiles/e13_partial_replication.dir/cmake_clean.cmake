file(REMOVE_RECURSE
  "../bench/e13_partial_replication"
  "../bench/e13_partial_replication.pdb"
  "CMakeFiles/e13_partial_replication.dir/e13_partial_replication.cpp.o"
  "CMakeFiles/e13_partial_replication.dir/e13_partial_replication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_partial_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
