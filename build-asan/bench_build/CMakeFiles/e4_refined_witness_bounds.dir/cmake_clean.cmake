file(REMOVE_RECURSE
  "../bench/e4_refined_witness_bounds"
  "../bench/e4_refined_witness_bounds.pdb"
  "CMakeFiles/e4_refined_witness_bounds.dir/e4_refined_witness_bounds.cpp.o"
  "CMakeFiles/e4_refined_witness_bounds.dir/e4_refined_witness_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_refined_witness_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
