# Empty compiler generated dependencies file for e4_refined_witness_bounds.
# This may be replaced when dependencies are built.
