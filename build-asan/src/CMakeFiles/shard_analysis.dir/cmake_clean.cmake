file(REMOVE_RECURSE
  "CMakeFiles/shard_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/shard_analysis.dir/analysis/report.cpp.o.d"
  "libshard_analysis.a"
  "libshard_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
