# Empty compiler generated dependencies file for shard_analysis.
# This may be replaced when dependencies are built.
