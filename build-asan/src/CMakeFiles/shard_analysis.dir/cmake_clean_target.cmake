file(REMOVE_RECURSE
  "libshard_analysis.a"
)
