file(REMOVE_RECURSE
  "libshard_net.a"
)
