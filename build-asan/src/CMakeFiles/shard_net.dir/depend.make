# Empty dependencies file for shard_net.
# This may be replaced when dependencies are built.
