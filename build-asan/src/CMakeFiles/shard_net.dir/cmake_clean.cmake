file(REMOVE_RECURSE
  "CMakeFiles/shard_net.dir/net/broadcast_stats.cpp.o"
  "CMakeFiles/shard_net.dir/net/broadcast_stats.cpp.o.d"
  "libshard_net.a"
  "libshard_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
