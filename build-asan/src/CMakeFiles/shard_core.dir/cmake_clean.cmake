file(REMOVE_RECURSE
  "CMakeFiles/shard_core.dir/core/cost.cpp.o"
  "CMakeFiles/shard_core.dir/core/cost.cpp.o.d"
  "CMakeFiles/shard_core.dir/core/timestamp.cpp.o"
  "CMakeFiles/shard_core.dir/core/timestamp.cpp.o.d"
  "libshard_core.a"
  "libshard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
