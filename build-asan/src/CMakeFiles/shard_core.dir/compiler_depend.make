# Empty compiler generated dependencies file for shard_core.
# This may be replaced when dependencies are built.
