file(REMOVE_RECURSE
  "libshard_core.a"
)
