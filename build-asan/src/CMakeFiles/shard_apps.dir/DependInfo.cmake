
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/airline/airline.cpp" "src/CMakeFiles/shard_apps.dir/apps/airline/airline.cpp.o" "gcc" "src/CMakeFiles/shard_apps.dir/apps/airline/airline.cpp.o.d"
  "/root/repo/src/apps/airline/timestamped.cpp" "src/CMakeFiles/shard_apps.dir/apps/airline/timestamped.cpp.o" "gcc" "src/CMakeFiles/shard_apps.dir/apps/airline/timestamped.cpp.o.d"
  "/root/repo/src/apps/airline/witness.cpp" "src/CMakeFiles/shard_apps.dir/apps/airline/witness.cpp.o" "gcc" "src/CMakeFiles/shard_apps.dir/apps/airline/witness.cpp.o.d"
  "/root/repo/src/apps/banking/banking.cpp" "src/CMakeFiles/shard_apps.dir/apps/banking/banking.cpp.o" "gcc" "src/CMakeFiles/shard_apps.dir/apps/banking/banking.cpp.o.d"
  "/root/repo/src/apps/dictionary/dictionary.cpp" "src/CMakeFiles/shard_apps.dir/apps/dictionary/dictionary.cpp.o" "gcc" "src/CMakeFiles/shard_apps.dir/apps/dictionary/dictionary.cpp.o.d"
  "/root/repo/src/apps/grapevine/grapevine.cpp" "src/CMakeFiles/shard_apps.dir/apps/grapevine/grapevine.cpp.o" "gcc" "src/CMakeFiles/shard_apps.dir/apps/grapevine/grapevine.cpp.o.d"
  "/root/repo/src/apps/inventory/inventory.cpp" "src/CMakeFiles/shard_apps.dir/apps/inventory/inventory.cpp.o" "gcc" "src/CMakeFiles/shard_apps.dir/apps/inventory/inventory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/shard_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/shard_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
