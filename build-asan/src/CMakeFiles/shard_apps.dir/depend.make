# Empty dependencies file for shard_apps.
# This may be replaced when dependencies are built.
