file(REMOVE_RECURSE
  "libshard_apps.a"
)
