file(REMOVE_RECURSE
  "CMakeFiles/shard_apps.dir/apps/airline/airline.cpp.o"
  "CMakeFiles/shard_apps.dir/apps/airline/airline.cpp.o.d"
  "CMakeFiles/shard_apps.dir/apps/airline/timestamped.cpp.o"
  "CMakeFiles/shard_apps.dir/apps/airline/timestamped.cpp.o.d"
  "CMakeFiles/shard_apps.dir/apps/airline/witness.cpp.o"
  "CMakeFiles/shard_apps.dir/apps/airline/witness.cpp.o.d"
  "CMakeFiles/shard_apps.dir/apps/banking/banking.cpp.o"
  "CMakeFiles/shard_apps.dir/apps/banking/banking.cpp.o.d"
  "CMakeFiles/shard_apps.dir/apps/dictionary/dictionary.cpp.o"
  "CMakeFiles/shard_apps.dir/apps/dictionary/dictionary.cpp.o.d"
  "CMakeFiles/shard_apps.dir/apps/grapevine/grapevine.cpp.o"
  "CMakeFiles/shard_apps.dir/apps/grapevine/grapevine.cpp.o.d"
  "CMakeFiles/shard_apps.dir/apps/inventory/inventory.cpp.o"
  "CMakeFiles/shard_apps.dir/apps/inventory/inventory.cpp.o.d"
  "libshard_apps.a"
  "libshard_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
