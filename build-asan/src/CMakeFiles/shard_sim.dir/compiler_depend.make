# Empty compiler generated dependencies file for shard_sim.
# This may be replaced when dependencies are built.
