file(REMOVE_RECURSE
  "CMakeFiles/shard_sim.dir/sim/crash.cpp.o"
  "CMakeFiles/shard_sim.dir/sim/crash.cpp.o.d"
  "CMakeFiles/shard_sim.dir/sim/delay.cpp.o"
  "CMakeFiles/shard_sim.dir/sim/delay.cpp.o.d"
  "CMakeFiles/shard_sim.dir/sim/network.cpp.o"
  "CMakeFiles/shard_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/shard_sim.dir/sim/partition.cpp.o"
  "CMakeFiles/shard_sim.dir/sim/partition.cpp.o.d"
  "CMakeFiles/shard_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/shard_sim.dir/sim/scheduler.cpp.o.d"
  "libshard_sim.a"
  "libshard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
