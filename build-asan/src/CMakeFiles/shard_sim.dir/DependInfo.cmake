
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/crash.cpp" "src/CMakeFiles/shard_sim.dir/sim/crash.cpp.o" "gcc" "src/CMakeFiles/shard_sim.dir/sim/crash.cpp.o.d"
  "/root/repo/src/sim/delay.cpp" "src/CMakeFiles/shard_sim.dir/sim/delay.cpp.o" "gcc" "src/CMakeFiles/shard_sim.dir/sim/delay.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/shard_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/shard_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/partition.cpp" "src/CMakeFiles/shard_sim.dir/sim/partition.cpp.o" "gcc" "src/CMakeFiles/shard_sim.dir/sim/partition.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/shard_sim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/shard_sim.dir/sim/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
