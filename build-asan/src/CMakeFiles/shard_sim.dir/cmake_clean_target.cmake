file(REMOVE_RECURSE
  "libshard_sim.a"
)
