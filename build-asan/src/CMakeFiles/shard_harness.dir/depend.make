# Empty dependencies file for shard_harness.
# This may be replaced when dependencies are built.
