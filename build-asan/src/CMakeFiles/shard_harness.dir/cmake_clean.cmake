file(REMOVE_RECURSE
  "CMakeFiles/shard_harness.dir/harness/scenario.cpp.o"
  "CMakeFiles/shard_harness.dir/harness/scenario.cpp.o.d"
  "CMakeFiles/shard_harness.dir/harness/table.cpp.o"
  "CMakeFiles/shard_harness.dir/harness/table.cpp.o.d"
  "CMakeFiles/shard_harness.dir/harness/workload.cpp.o"
  "CMakeFiles/shard_harness.dir/harness/workload.cpp.o.d"
  "libshard_harness.a"
  "libshard_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
