file(REMOVE_RECURSE
  "libshard_harness.a"
)
