file(REMOVE_RECURSE
  "libshard_engine.a"
)
