file(REMOVE_RECURSE
  "CMakeFiles/shard_engine.dir/shard/engine_stats.cpp.o"
  "CMakeFiles/shard_engine.dir/shard/engine_stats.cpp.o.d"
  "libshard_engine.a"
  "libshard_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
