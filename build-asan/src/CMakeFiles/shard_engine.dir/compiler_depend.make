# Empty compiler generated dependencies file for shard_engine.
# This may be replaced when dependencies are built.
