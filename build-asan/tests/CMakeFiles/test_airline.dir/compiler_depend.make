# Empty compiler generated dependencies file for test_airline.
# This may be replaced when dependencies are built.
