file(REMOVE_RECURSE
  "CMakeFiles/test_airline.dir/test_airline.cpp.o"
  "CMakeFiles/test_airline.dir/test_airline.cpp.o.d"
  "test_airline"
  "test_airline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
