# Empty compiler generated dependencies file for test_compensation.
# This may be replaced when dependencies are built.
