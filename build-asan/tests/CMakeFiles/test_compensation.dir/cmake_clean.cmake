file(REMOVE_RECURSE
  "CMakeFiles/test_compensation.dir/test_compensation.cpp.o"
  "CMakeFiles/test_compensation.dir/test_compensation.cpp.o.d"
  "test_compensation"
  "test_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
