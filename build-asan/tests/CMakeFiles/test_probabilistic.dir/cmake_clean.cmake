file(REMOVE_RECURSE
  "CMakeFiles/test_probabilistic.dir/test_probabilistic.cpp.o"
  "CMakeFiles/test_probabilistic.dir/test_probabilistic.cpp.o.d"
  "test_probabilistic"
  "test_probabilistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
