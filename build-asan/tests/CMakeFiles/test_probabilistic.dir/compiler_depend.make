# Empty compiler generated dependencies file for test_probabilistic.
# This may be replaced when dependencies are built.
