file(REMOVE_RECURSE
  "CMakeFiles/test_centralization.dir/test_centralization.cpp.o"
  "CMakeFiles/test_centralization.dir/test_centralization.cpp.o.d"
  "test_centralization"
  "test_centralization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_centralization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
