# Empty dependencies file for test_centralization.
# This may be replaced when dependencies are built.
