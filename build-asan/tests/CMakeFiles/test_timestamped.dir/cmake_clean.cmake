file(REMOVE_RECURSE
  "CMakeFiles/test_timestamped.dir/test_timestamped.cpp.o"
  "CMakeFiles/test_timestamped.dir/test_timestamped.cpp.o.d"
  "test_timestamped"
  "test_timestamped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timestamped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
