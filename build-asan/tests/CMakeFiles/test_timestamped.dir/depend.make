# Empty dependencies file for test_timestamped.
# This may be replaced when dependencies are built.
