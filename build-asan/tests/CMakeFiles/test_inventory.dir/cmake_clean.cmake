file(REMOVE_RECURSE
  "CMakeFiles/test_inventory.dir/test_inventory.cpp.o"
  "CMakeFiles/test_inventory.dir/test_inventory.cpp.o.d"
  "test_inventory"
  "test_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
