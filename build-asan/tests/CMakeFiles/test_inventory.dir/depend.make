# Empty dependencies file for test_inventory.
# This may be replaced when dependencies are built.
