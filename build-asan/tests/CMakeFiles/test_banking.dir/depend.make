# Empty dependencies file for test_banking.
# This may be replaced when dependencies are built.
