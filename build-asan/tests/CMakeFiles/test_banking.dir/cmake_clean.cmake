file(REMOVE_RECURSE
  "CMakeFiles/test_banking.dir/test_banking.cpp.o"
  "CMakeFiles/test_banking.dir/test_banking.cpp.o.d"
  "test_banking"
  "test_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
