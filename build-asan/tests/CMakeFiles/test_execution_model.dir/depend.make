# Empty dependencies file for test_execution_model.
# This may be replaced when dependencies are built.
