file(REMOVE_RECURSE
  "CMakeFiles/test_execution_model.dir/test_execution_model.cpp.o"
  "CMakeFiles/test_execution_model.dir/test_execution_model.cpp.o.d"
  "test_execution_model"
  "test_execution_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
