file(REMOVE_RECURSE
  "CMakeFiles/test_partial.dir/test_partial.cpp.o"
  "CMakeFiles/test_partial.dir/test_partial.cpp.o.d"
  "test_partial"
  "test_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
