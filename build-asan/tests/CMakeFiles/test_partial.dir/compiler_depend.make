# Empty compiler generated dependencies file for test_partial.
# This may be replaced when dependencies are built.
