file(REMOVE_RECURSE
  "CMakeFiles/test_dictionary.dir/test_dictionary.cpp.o"
  "CMakeFiles/test_dictionary.dir/test_dictionary.cpp.o.d"
  "test_dictionary"
  "test_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
