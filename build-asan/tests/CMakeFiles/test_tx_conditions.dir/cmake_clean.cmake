file(REMOVE_RECURSE
  "CMakeFiles/test_tx_conditions.dir/test_tx_conditions.cpp.o"
  "CMakeFiles/test_tx_conditions.dir/test_tx_conditions.cpp.o.d"
  "test_tx_conditions"
  "test_tx_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tx_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
