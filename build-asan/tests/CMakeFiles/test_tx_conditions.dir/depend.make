# Empty dependencies file for test_tx_conditions.
# This may be replaced when dependencies are built.
