file(REMOVE_RECURSE
  "CMakeFiles/test_cost_bounds.dir/test_cost_bounds.cpp.o"
  "CMakeFiles/test_cost_bounds.dir/test_cost_bounds.cpp.o.d"
  "test_cost_bounds"
  "test_cost_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
