# Empty dependencies file for test_timestamp.
# This may be replaced when dependencies are built.
