file(REMOVE_RECURSE
  "CMakeFiles/test_timestamp.dir/test_timestamp.cpp.o"
  "CMakeFiles/test_timestamp.dir/test_timestamp.cpp.o.d"
  "test_timestamp"
  "test_timestamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timestamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
