# Empty compiler generated dependencies file for test_grapevine.
# This may be replaced when dependencies are built.
