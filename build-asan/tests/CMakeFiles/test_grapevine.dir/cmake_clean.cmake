file(REMOVE_RECURSE
  "CMakeFiles/test_grapevine.dir/test_grapevine.cpp.o"
  "CMakeFiles/test_grapevine.dir/test_grapevine.cpp.o.d"
  "test_grapevine"
  "test_grapevine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grapevine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
