file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_mode.dir/test_mixed_mode.cpp.o"
  "CMakeFiles/test_mixed_mode.dir/test_mixed_mode.cpp.o.d"
  "test_mixed_mode"
  "test_mixed_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
