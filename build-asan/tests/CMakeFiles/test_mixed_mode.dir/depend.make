# Empty dependencies file for test_mixed_mode.
# This may be replaced when dependencies are built.
