file(REMOVE_RECURSE
  "CMakeFiles/test_update_log.dir/test_update_log.cpp.o"
  "CMakeFiles/test_update_log.dir/test_update_log.cpp.o.d"
  "test_update_log"
  "test_update_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
