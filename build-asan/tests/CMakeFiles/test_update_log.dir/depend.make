# Empty dependencies file for test_update_log.
# This may be replaced when dependencies are built.
