file(REMOVE_RECURSE
  "CMakeFiles/test_serializability.dir/test_serializability.cpp.o"
  "CMakeFiles/test_serializability.dir/test_serializability.cpp.o.d"
  "test_serializability"
  "test_serializability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serializability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
