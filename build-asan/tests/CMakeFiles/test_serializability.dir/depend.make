# Empty dependencies file for test_serializability.
# This may be replaced when dependencies are built.
